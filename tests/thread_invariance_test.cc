// Thread-count invariance golden tests: the determinism contract of the
// concurrency substrate is that the thread count is a pure performance knob
// — every stochastic decision is keyed by logical index (Rng::Fork) and all
// reductions run in index order, so training at threads=4 must produce the
// SAME bits as threads=1. These tests train the same model at both settings
// from the same seed and require exact equality of parameters, loss/reward
// histories, serialized models and evaluation metrics. Any scheduling-
// dependent RNG draw, out-of-order reduction, or shared mutable state that
// changes results will fail here even on a single-core machine.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cadrl.h"
#include "data/generator.h"
#include "embed/transe.h"
#include "eval/evaluator.h"
#include "infer/precision.h"
#include "serve/recommend_service.h"
#include "util/kernels.h"

namespace cadrl {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

core::CadrlOptions BaseOptions() {
  core::CadrlOptions o;
  o.use_cggnn = false;
  o.transe.dim = 8;
  o.transe.epochs = 4;
  o.policy_hidden = 16;
  o.episodes_per_user = 4;
  o.max_path_length = 4;
  o.beam_width = 6;
  o.beam_expand = 3;
  o.seed = 43;
  return o;
}

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset();
    ASSERT_TRUE(
        data::GenerateDataset(data::SyntheticConfig::Tiny(), dataset_).ok());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
};

data::Dataset* ThreadInvarianceTest::dataset_ = nullptr;

TEST_F(ThreadInvarianceTest, TransETrainingIsThreadCountInvariant) {
  embed::TransEOptions opts = BaseOptions().transe;

  opts.threads = 1;
  const embed::TransEModel sequential =
      embed::TransEModel::Train(dataset_->graph, opts);

  opts.threads = 4;
  const embed::TransEModel parallel =
      embed::TransEModel::Train(dataset_->graph, opts);

  EXPECT_EQ(parallel.EntityTable(), sequential.EntityTable());
  EXPECT_EQ(parallel.RelationTable(), sequential.RelationTable());
  EXPECT_EQ(parallel.CategoryTable(), sequential.CategoryTable());
  EXPECT_EQ(parallel.epoch_losses(), sequential.epoch_losses());
}

TEST_F(ThreadInvarianceTest, TransEAutoThreadsMatchesSequential) {
  embed::TransEOptions opts = BaseOptions().transe;

  opts.threads = 1;
  const embed::TransEModel sequential =
      embed::TransEModel::Train(dataset_->graph, opts);

  opts.threads = 0;  // one worker per hardware thread, whatever that is here
  const embed::TransEModel parallel =
      embed::TransEModel::Train(dataset_->graph, opts);

  EXPECT_EQ(parallel.EntityTable(), sequential.EntityTable());
  EXPECT_EQ(parallel.epoch_losses(), sequential.epoch_losses());
}

TEST_F(ThreadInvarianceTest, CadrlFitIsThreadCountInvariant) {
  const std::string model_seq =
      ::testing::TempDir() + "/cadrl_inv_model_seq";
  const std::string model_par =
      ::testing::TempDir() + "/cadrl_inv_model_par";

  core::CadrlOptions opts = BaseOptions();
  opts.threads = 1;
  opts.transe.threads = 1;
  core::CadrlRecommender sequential(opts);
  ASSERT_TRUE(sequential.Fit(*dataset_).ok());
  ASSERT_TRUE(sequential.SaveModel(model_seq).ok());

  opts.threads = 4;
  opts.transe.threads = 4;
  core::CadrlRecommender parallel(opts);
  ASSERT_TRUE(parallel.Fit(*dataset_).ok());
  ASSERT_TRUE(parallel.SaveModel(model_par).ok());

  // Reward history, the full serialized inference state (embedding tables,
  // policy parameters, score config), and the eval metrics all match bit
  // for bit.
  EXPECT_EQ(parallel.epoch_rewards(), sequential.epoch_rewards());
  EXPECT_EQ(ReadAll(model_par), ReadAll(model_seq));

  const eval::EvalResult eval_seq =
      eval::EvaluateRecommender(&sequential, *dataset_, 10);
  const eval::EvalResult eval_par =
      eval::EvaluateRecommender(&parallel, *dataset_, 10, 0, /*threads=*/4);
  EXPECT_EQ(eval_par.users_evaluated, eval_seq.users_evaluated);
  EXPECT_EQ(eval_par.ndcg, eval_seq.ndcg);
  EXPECT_EQ(eval_par.recall, eval_seq.recall);
  EXPECT_EQ(eval_par.hit_rate, eval_seq.hit_rate);
  EXPECT_EQ(eval_par.precision, eval_seq.precision);

  std::remove(model_seq.c_str());
  std::remove(model_par.c_str());
}

TEST_F(ThreadInvarianceTest, FullPipelineWithKernelsIsThreadCountInvariant) {
  // The full stack — TransE, CGGNN (batched GEMM propagation), dual-agent
  // RL with batched action scoring — every stage routed through the kernel
  // layer. Fixed 8-lane reductions and fixed block sizes mean the kernels
  // contribute no thread- or shape-dependent summation order, so the
  // serialized models must still match byte for byte.
  const std::string model_seq =
      ::testing::TempDir() + "/cadrl_kinv_model_seq";
  const std::string model_par =
      ::testing::TempDir() + "/cadrl_kinv_model_par";

  core::CadrlOptions opts = BaseOptions();
  opts.use_cggnn = true;
  opts.cggnn.epochs = 3;
  opts.cggnn.pairs_per_epoch = 64;

  opts.threads = 1;
  opts.transe.threads = 1;
  core::CadrlRecommender sequential(opts);
  ASSERT_TRUE(sequential.Fit(*dataset_).ok());
  ASSERT_TRUE(sequential.SaveModel(model_seq).ok());

  opts.threads = 4;
  opts.transe.threads = 4;
  core::CadrlRecommender parallel(opts);
  ASSERT_TRUE(parallel.Fit(*dataset_).ok());
  ASSERT_TRUE(parallel.SaveModel(model_par).ok());

  EXPECT_EQ(parallel.epoch_rewards(), sequential.epoch_rewards());
  EXPECT_EQ(ReadAll(model_par), ReadAll(model_seq));

  const eval::EvalResult eval_seq =
      eval::EvaluateRecommender(&sequential, *dataset_, 10);
  const eval::EvalResult eval_par =
      eval::EvaluateRecommender(&parallel, *dataset_, 10, 0, /*threads=*/4);
  EXPECT_EQ(eval_par.ndcg, eval_seq.ndcg);
  EXPECT_EQ(eval_par.recall, eval_seq.recall);

  std::remove(model_seq.c_str());
  std::remove(model_par.c_str());
}

TEST_F(ThreadInvarianceTest, KernelBackendsProduceIdenticalModels) {
  // The backend toggle is pure implementation choice: a full fit under the
  // scalar fallback must serialize the exact bytes of a blocked-backend
  // fit (the cross-backend half of the kernel determinism contract; the
  // per-kernel half lives in kernels_test.cc).
  const std::string model_scalar =
      ::testing::TempDir() + "/cadrl_kb_model_scalar";
  const std::string model_blocked =
      ::testing::TempDir() + "/cadrl_kb_model_blocked";

  core::CadrlOptions opts = BaseOptions();
  opts.use_cggnn = true;
  opts.cggnn.epochs = 2;
  opts.cggnn.pairs_per_epoch = 64;

  const kernels::Backend saved = kernels::ActiveBackend();
  kernels::SetBackend(kernels::Backend::kScalar);
  core::CadrlRecommender scalar_fit(opts);
  ASSERT_TRUE(scalar_fit.Fit(*dataset_).ok());
  ASSERT_TRUE(scalar_fit.SaveModel(model_scalar).ok());

  kernels::SetBackend(kernels::Backend::kBlocked);
  core::CadrlRecommender blocked_fit(opts);
  ASSERT_TRUE(blocked_fit.Fit(*dataset_).ok());
  ASSERT_TRUE(blocked_fit.SaveModel(model_blocked).ok());
  kernels::SetBackend(saved);

  EXPECT_EQ(scalar_fit.epoch_rewards(), blocked_fit.epoch_rewards());
  EXPECT_EQ(ReadAll(model_scalar), ReadAll(model_blocked));

  std::remove(model_scalar.c_str());
  std::remove(model_blocked.c_str());
}

TEST_F(ThreadInvarianceTest, BatchedServingIsWorkerCountInvariant) {
  // The serving-side face of the same contract: the worker count and the
  // micro-batch flush composition are pure performance knobs. A service
  // with cross-request batching enabled must return, at every worker
  // count, the exact bytes of a direct single-threaded Recommend call —
  // item ids, scores, and explanation paths.
  core::CadrlOptions opts = BaseOptions();
  opts.threads = 1;
  opts.transe.threads = 1;
  core::CadrlRecommender model(opts);
  ASSERT_TRUE(model.Fit(*dataset_).ok());

  constexpr int kTopK = 5;
  std::vector<std::vector<eval::Recommendation>> baseline;
  for (kg::EntityId user : dataset_->users) {
    baseline.push_back(model.Recommend(user, kTopK));
  }

  for (const int workers : {1, 4}) {
    serve::ServeOptions options;
    options.threads = workers;
    options.queue_capacity = 256;
    options.top_k = kTopK;
    options.batch_max = 4;
    options.batch_linger = std::chrono::microseconds{200};
    serve::RecommendService service(&model, *dataset_, options);
    ASSERT_TRUE(service.Start().ok());
    std::vector<std::future<serve::ServeResponse>> futures;
    std::vector<size_t> indices;
    for (int round = 0; round < 2; ++round) {
      for (size_t u = 0; u < dataset_->users.size(); ++u) {
        serve::ServeRequest req;
        req.user = dataset_->users[u];
        req.k = kTopK;
        req.timeout = std::chrono::microseconds{-1};  // no deadline
        futures.push_back(service.Submit(req));
        indices.push_back(u);
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::ServeResponse resp = futures[i].get();
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_EQ(resp.level, serve::DegradationLevel::kFull);
      const auto& want = baseline[indices[i]];
      ASSERT_EQ(want.size(), resp.recs.size());
      for (size_t r = 0; r < want.size(); ++r) {
        EXPECT_EQ(want[r].item, resp.recs[r].item);
        EXPECT_EQ(want[r].score, resp.recs[r].score);
        EXPECT_EQ(want[r].path.steps, resp.recs[r].path.steps);
      }
    }
    service.Stop();
    EXPECT_GT(service.stats().batched_steps, 0);
  }
}

TEST_F(ThreadInvarianceTest, QuantizedBatchedServingIsWorkerCountInvariant) {
  // The serving contract survives quantization: with the snapshot
  // re-encoded as int8 rows, worker count and micro-batch composition are
  // still pure performance knobs — every response matches the direct
  // single-threaded int8 Recommend byte for byte.
  core::CadrlOptions opts = BaseOptions();
  opts.threads = 1;
  opts.transe.threads = 1;
  core::CadrlRecommender model(opts);
  ASSERT_TRUE(model.Fit(*dataset_).ok());
  model.set_snapshot_precision(infer::Precision::kInt8);
  model.RepublishSnapshot();
  ASSERT_EQ(model.CurrentSnapshot()->precision(), infer::Precision::kInt8);

  constexpr int kTopK = 5;
  std::vector<std::vector<eval::Recommendation>> baseline;
  for (kg::EntityId user : dataset_->users) {
    baseline.push_back(model.Recommend(user, kTopK));
  }

  for (const int workers : {1, 4}) {
    serve::ServeOptions options;
    options.threads = workers;
    options.queue_capacity = 256;
    options.top_k = kTopK;
    options.batch_max = 4;
    options.batch_linger = std::chrono::microseconds{200};
    serve::RecommendService service(&model, *dataset_, options);
    ASSERT_TRUE(service.Start().ok());
    std::vector<std::future<serve::ServeResponse>> futures;
    std::vector<size_t> indices;
    for (int round = 0; round < 2; ++round) {
      for (size_t u = 0; u < dataset_->users.size(); ++u) {
        serve::ServeRequest req;
        req.user = dataset_->users[u];
        req.k = kTopK;
        req.timeout = std::chrono::microseconds{-1};  // no deadline
        futures.push_back(service.Submit(req));
        indices.push_back(u);
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::ServeResponse resp = futures[i].get();
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_EQ(resp.level, serve::DegradationLevel::kFull);
      const auto& want = baseline[indices[i]];
      ASSERT_EQ(want.size(), resp.recs.size());
      for (size_t r = 0; r < want.size(); ++r) {
        EXPECT_EQ(want[r].item, resp.recs[r].item);
        EXPECT_EQ(want[r].score, resp.recs[r].score);
        EXPECT_EQ(want[r].path.steps, resp.recs[r].path.steps);
      }
    }
    service.Stop();
    EXPECT_GT(service.stats().batched_steps, 0);
    // The quantized arena footprint surfaces through the service stats.
    const serve::RecommendService::Stats stats = service.stats();
    EXPECT_GT(stats.arena_store_row_bytes, 0);
    EXPECT_GT(stats.arena_store_scale_bytes, 0);
    EXPECT_GT(stats.arena_policy_param_bytes, 0);
  }
}

TEST_F(ThreadInvarianceTest, RolloutBatchIsPartOfTheAlgorithm) {
  // Negative control for the determinism contract: the *batch size* is
  // allowed to change results (one optimizer step per batch), only the
  // thread count is not. Guard that the invariance tests above cannot pass
  // vacuously because training ignores batching altogether.
  core::CadrlOptions a = BaseOptions();
  a.rollout_batch = 1;
  core::CadrlRecommender batch1(a);
  ASSERT_TRUE(batch1.Fit(*dataset_).ok());

  core::CadrlOptions b = BaseOptions();
  b.rollout_batch = 8;
  core::CadrlRecommender batch8(b);
  ASSERT_TRUE(batch8.Fit(*dataset_).ok());

  EXPECT_NE(batch8.epoch_rewards(), batch1.epoch_rewards());
}

}  // namespace
}  // namespace cadrl
