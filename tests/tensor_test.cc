#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace cadrl {
namespace ag {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ScalarFactory) {
  Tensor t = Tensor::Scalar(2.5f);
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 2.5f);
}

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros({3});
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(z.at(i), 0.0f);
  Tensor f = Tensor::Full({2, 2}, 7.0f);
  EXPECT_EQ(f.rows(), 2);
  EXPECT_EQ(f.cols(), 2);
  EXPECT_FLOAT_EQ(f.at(1, 1), 7.0f);
}

TEST(TensorTest, FromVectorChecksShape) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::Randn({100, 10}, &rng, 0.5f);
  double sum = 0.0, sum_sq = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t.data()[i];
    sum_sq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  const double mean = sum / t.numel();
  const double var = sum_sq / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 0.25, 0.05);
}

TEST(TensorTest, CopyIsShallow) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;
  b.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.at(0), 9.0f);
}

TEST(TensorTest, DetachCopiesValuesDropsGradHistory) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.at(1), 4.0f);
  d.data()[0] = 100.0f;
  EXPECT_FLOAT_EQ(b.at(0), 2.0f) << "detach must deep-copy values";
}

TEST(TensorTest, ZeroGradClears) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, /*requires_grad=*/true);
  Tensor loss = Sum(a);
  Backward(loss);
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(BackwardTest, GradAccumulatesAcrossCalls) {
  Tensor a = Tensor::FromVector({3}, {1}, /*requires_grad=*/true);
  Tensor loss1 = Sum(a);
  Backward(loss1);
  Tensor loss2 = Sum(a);
  Backward(loss2);
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(BackwardTest, DiamondGraphAccumulatesOnce) {
  // loss = sum(a*a + a*a) -> d/da = 4a
  Tensor a = Tensor::FromVector({2.0f}, {1}, /*requires_grad=*/true);
  Tensor sq = Mul(a, a);
  Tensor loss = Sum(Add(sq, sq));
  Backward(loss);
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);
}

TEST(BackwardTest, ChainThroughManyOps) {
  Tensor a = Tensor::FromVector({0.5f}, {1}, /*requires_grad=*/true);
  // loss = sum(2 * a) repeated through a 10-op chain of +0 noops.
  Tensor x = MulScalar(a, 2.0f);
  for (int i = 0; i < 10; ++i) x = AddScalar(x, 0.0f);
  Backward(Sum(x));
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(NoGradTest, GuardDisablesTape) {
  Tensor a = Tensor::FromVector({1.0f}, {1}, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradEnabled());
    Tensor b = MulScalar(a, 3.0f);
    EXPECT_FALSE(b.requires_grad());
  }
  EXPECT_TRUE(GradEnabled());
  Tensor c = MulScalar(a, 3.0f);
  EXPECT_TRUE(c.requires_grad());
}

TEST(NoGradTest, GuardsNest) {
  NoGradGuard g1;
  {
    NoGradGuard g2;
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_FALSE(GradEnabled());
}

TEST(TensorTest, LeafWithoutRequiresGradGetsNoGradient) {
  Tensor a = Tensor::FromVector({1.0f}, {1}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({2.0f}, {1}, /*requires_grad=*/false);
  Tensor loss = Sum(Mul(a, b));
  Backward(loss);
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 0.0f);
}

}  // namespace
}  // namespace ag
}  // namespace cadrl
