#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"

namespace cadrl {
namespace {

TEST(ThreadPoolTest, ClampThreadsMapsZeroToHardwareAndNegativesToOne) {
  EXPECT_GE(ThreadPool::ClampThreads(0), 1);
  EXPECT_EQ(ThreadPool::ClampThreads(-3), 1);
  EXPECT_EQ(ThreadPool::ClampThreads(1), 1);
  EXPECT_EQ(ThreadPool::ClampThreads(7), 7);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnceUnderRandomizedGrains) {
  Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    const int threads = static_cast<int>(rng.UniformInt(6)) + 1;
    const int64_t begin = rng.UniformInt(50);
    const int64_t end = begin + rng.UniformInt(500);
    const int64_t grain = rng.UniformInt(64) + 1;
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(
        static_cast<size_t>(std::max<int64_t>(1, end - begin)));
    const Status status =
        pool.ParallelFor(begin, end, grain, [&](int64_t i) {
          visits[static_cast<size_t>(i - begin)].fetch_add(1);
          return Status::OK();
        });
    ASSERT_TRUE(status.ok());
    for (int64_t i = 0; i < end - begin; ++i) {
      EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
          << "threads=" << threads << " range=[" << begin << "," << end
          << ") grain=" << grain << " index=" << begin + i;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(5, 5, 1, [&](int64_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(pool.ParallelFor(9, 3, 1, [&](int64_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, LowestIndexErrorWinsDeterministically) {
  // Several indices fail; whichever thread reports last, the surfaced
  // Status must be the lowest failing index's — on every repetition and
  // for every thread count.
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      const Status status = pool.ParallelFor(0, 200, 3, [](int64_t i) {
        if (i == 23 || i == 24 || i == 150) {
          return Status::Internal("fail at " + std::to_string(i));
        }
        return Status::OK();
      });
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.message(), "fail at 23") << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, AllIndicesStillRunAfterAnError) {
  // Error propagation must not skip work: a failing index never suppresses
  // later indices (that would make "which indices ran" scheduling-
  // dependent).
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  const Status status = pool.ParallelFor(0, 100, 1, [&](int64_t i) {
    ran.fetch_add(1);
    return i == 0 ? Status::Internal("early failure") : Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateWithoutDeadlock) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        {
          (void)pool.ParallelFor(0, 64, 2, [](int64_t i) {
            if (i == 17) throw std::runtime_error("boom");
            return Status::OK();
          });
        },
        std::runtime_error);
    // The pool survives and keeps scheduling work.
    std::atomic<int> ran{0};
    ASSERT_TRUE(pool.ParallelFor(0, 32, 1, [&](int64_t) {
                      ran.fetch_add(1);
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(ran.load(), 32);
  }
}

TEST(ThreadPoolTest, LowestIndexWinsAcrossErrorKinds) {
  ThreadPool pool(4);
  // Status at 3 beats exception at 50.
  const Status status = pool.ParallelFor(0, 64, 1, [](int64_t i) {
    if (i == 50) throw std::runtime_error("later exception");
    if (i == 3) return Status::Internal("earlier status");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "earlier status");
  // Exception at 2 beats Status at 40.
  EXPECT_THROW(
      {
        (void)pool.ParallelFor(0, 64, 1, [](int64_t i) {
          if (i == 2) throw std::runtime_error("earlier exception");
          if (i == 40) return Status::Internal("later status");
          return Status::OK();
        });
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_visits(64);
  const Status status = pool.ParallelFor(0, 8, 1, [&](int64_t outer) {
    // A nested call on the same (busy) pool must degrade to inline
    // execution instead of deadlocking on the pool's own workers.
    return pool.ParallelFor(outer * 8, (outer + 1) * 8, 1, [&](int64_t i) {
      inner_visits[static_cast<size_t>(i)].fetch_add(1);
      return Status::OK();
    });
  });
  ASSERT_TRUE(status.ok());
  for (auto& v : inner_visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  ASSERT_TRUE(pool.ParallelFor(0, 32, 4, [&](int64_t) {
                    if (std::this_thread::get_id() != caller) {
                      all_on_caller = false;
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  // Construct, use, and destroy pools repeatedly — including immediately
  // after dispatching work and without ever dispatching any.
  for (int round = 0; round < 25; ++round) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    ASSERT_TRUE(pool.ParallelFor(0, 256, 1, [&](int64_t) {
                      ran.fetch_add(1);
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(ran.load(), 256);
  }
  for (int round = 0; round < 25; ++round) {
    ThreadPool idle(3);  // destroyed without work
  }
}

TEST(ThreadPoolTest, ResultsAreIdenticalForAnyThreadCount) {
  // The determinism contract in practice: per-index work keyed by logical
  // index, reduced in index order, gives bit-identical output for 1, 2 and
  // 8 threads.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    const Rng base(31337);
    std::vector<uint64_t> out(128);
    EXPECT_TRUE(pool.ParallelFor(0, 128, 5, [&](int64_t i) {
                      Rng stream = base.Fork(static_cast<uint64_t>(i));
                      out[static_cast<size_t>(i)] = stream.NextUint64();
                      return Status::OK();
                    })
                    .ok());
    uint64_t digest = 0xcbf29ce484222325ULL;
    for (uint64_t v : out) digest = (digest ^ v) * 0x100000001b3ULL;
    return digest;
  };
  const uint64_t d1 = run(1);
  EXPECT_EQ(d1, run(2));
  EXPECT_EQ(d1, run(8));
}

}  // namespace
}  // namespace cadrl
