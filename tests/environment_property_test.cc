// Property sweeps over the MDP environments: action caps, self-loop
// invariants and determinism across entity types and cap sizes.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/embedding_store.h"
#include "core/environment.h"
#include "data/generator.h"
#include "embed/transe.h"

namespace cadrl {
namespace core {
namespace {

class EnvSweepFixture : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(
        data::MustGenerateDataset(data::SyntheticConfig::Tiny()));
    embed::TransEOptions options;
    options.dim = 8;
    options.epochs = 2;
    transe_ = new embed::TransEModel(
        embed::TransEModel::Train(dataset_->graph, options));
    store_ = new EmbeddingStore(&dataset_->graph, transe_);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete transe_;
    delete dataset_;
    store_ = nullptr;
    transe_ = nullptr;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
  static embed::TransEModel* transe_;
  static EmbeddingStore* store_;
};

data::Dataset* EnvSweepFixture::dataset_ = nullptr;
embed::TransEModel* EnvSweepFixture::transe_ = nullptr;
EmbeddingStore* EnvSweepFixture::store_ = nullptr;

TEST_P(EnvSweepFixture, EntityActionInvariantsAcrossCaps) {
  const int cap = GetParam();
  EntityEnvironment env(&dataset_->graph, store_, cap);
  const kg::EntityId user = dataset_->users[0];
  for (kg::EntityId e = 0; e < dataset_->graph.num_entities(); e += 7) {
    const auto actions = env.ValidActions(user, e);
    ASSERT_FALSE(actions.empty());
    // Self-loop first, cap respected, all moves are real edges, no
    // duplicate actions.
    EXPECT_EQ(actions[0].relation, kg::Relation::kSelfLoop);
    EXPECT_EQ(actions[0].dst, e);
    EXPECT_LE(static_cast<int>(actions.size()), cap);
    std::set<std::pair<int, kg::EntityId>> seen;
    for (size_t i = 1; i < actions.size(); ++i) {
      EXPECT_TRUE(dataset_->graph.HasEdge(e, actions[i].relation,
                                          actions[i].dst));
      EXPECT_TRUE(seen.insert({static_cast<int>(actions[i].relation),
                               actions[i].dst})
                      .second);
    }
    // When the degree fits the budget, nothing may be dropped.
    if (dataset_->graph.Degree(e) <= cap - 1) {
      EXPECT_EQ(static_cast<int64_t>(actions.size()) - 1,
                dataset_->graph.Degree(e));
    }
  }
}

TEST_P(EnvSweepFixture, CategoryActionInvariantsAcrossCaps) {
  const int cap = GetParam();
  CategoryEnvironment env(&dataset_->category_graph, store_, cap);
  const kg::EntityId user = dataset_->users[1];
  for (kg::CategoryId c = 0; c < dataset_->category_graph.num_categories();
       ++c) {
    const auto actions = env.ValidActions(user, c);
    ASSERT_FALSE(actions.empty());
    EXPECT_EQ(actions[0], c) << "stay action first";
    EXPECT_LE(static_cast<int>(actions.size()), cap);
    for (size_t i = 1; i < actions.size(); ++i) {
      EXPECT_TRUE(dataset_->category_graph.Connected(c, actions[i]));
    }
  }
}

TEST_P(EnvSweepFixture, PruningPrefersHigherScoredEndpoints) {
  const int cap = GetParam();
  EntityEnvironment env(&dataset_->graph, store_, cap);
  const kg::EntityId user = dataset_->users[2];
  // Find an entity whose degree exceeds the budget so pruning engages.
  for (kg::EntityId e = 0; e < dataset_->graph.num_entities(); ++e) {
    if (dataset_->graph.Degree(e) <= cap - 1) continue;
    const auto actions = env.ValidActions(user, e);
    ASSERT_EQ(static_cast<int>(actions.size()), cap);
    // Every kept endpoint must score at least as high as the worst scored
    // dropped endpoint.
    float min_kept = 1e30f;
    std::set<std::pair<int, kg::EntityId>> kept;
    for (size_t i = 1; i < actions.size(); ++i) {
      min_kept = std::min(min_kept,
                          store_->ScoreUserEntity(user, actions[i].dst));
      kept.insert({static_cast<int>(actions[i].relation), actions[i].dst});
    }
    for (const kg::Edge& edge : dataset_->graph.Neighbors(e)) {
      if (kept.count({static_cast<int>(edge.relation), edge.dst}) > 0) {
        continue;
      }
      EXPECT_LE(store_->ScoreUserEntity(user, edge.dst), min_kept + 1e-5f);
    }
    return;  // one high-degree entity suffices
  }
  GTEST_SKIP() << "no entity exceeds cap " << cap;
}

INSTANTIATE_TEST_SUITE_P(Caps, EnvSweepFixture,
                         ::testing::Values(2, 3, 5, 10, 25));

}  // namespace
}  // namespace core
}  // namespace cadrl
