// Chaos harness for the serving layer (ctest labels "chaos"/"tsan"): arms
// probabilistic fault + latency injection on the scoring and path-finding
// failpoints, hammers one RecommendService from >= 4 concurrent client
// threads, and asserts the robustness contract of DESIGN.md §11:
//
//   1. no crash, no hang — every submitted request resolves to a terminal
//      answer within its deadline plus a bounded grace period;
//   2. degradation decisions are byte-deterministic for a fixed seed: with
//      the breakers disabled, request id -> (level, status, attempts, items,
//      scores) is identical across independent runs regardless of thread
//      interleaving;
//   3. circuit-breaker transitions match a golden trace when driven by a
//      manual clock.
//
// Built as its own binary so the ThreadSanitizer job can run exactly this
// workload (`ctest -L tsan`); any unguarded shared state in the service
// shows up as a TSan report or a determinism mismatch.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/cadrl.h"
#include "data/generator.h"
#include "infer/compiled_model.h"
#include "infer/shard_layout.h"
#include "serve/recommend_service.h"
#include "util/failpoint.h"

namespace cadrl {
namespace {

using serve::CircuitBreaker;
using serve::DegradationLevel;
using serve::RecommendService;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::ServeResponse;

constexpr auto kNoDeadline = std::chrono::microseconds{-1};

core::CadrlOptions ChaosModelOptions() {
  core::CadrlOptions o;
  o.transe.dim = 8;
  o.transe.epochs = 4;
  o.use_cggnn = false;
  o.episodes_per_user = 2;
  o.policy_hidden = 16;
  o.seed = 77;
  return o;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset();
    ASSERT_TRUE(
        data::GenerateDataset(data::SyntheticConfig::Tiny(), dataset_).ok());
    model_ = new core::CadrlRecommender(ChaosModelOptions());
    ASSERT_TRUE(model_->Fit(*dataset_).ok());
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  static data::Dataset* dataset_;
  static core::CadrlRecommender* model_;
};

data::Dataset* ServeChaosTest::dataset_ = nullptr;
core::CadrlRecommender* ServeChaosTest::model_ = nullptr;

// --- 1. Liveness under chaos -------------------------------------------

// Shared body: `batch_max > 1` additionally routes the primary stage
// through the micro-batch scheduler, so flush leaders execute other
// requests' parked steps while faults and latency injection fire — the
// liveness contract (resolve within deadline + grace) must hold anyway.
void RunFaultLatencyLiveness(core::CadrlRecommender* model,
                             const data::Dataset& dataset, int batch_max) {
  // 10% injected faults on both inference failpoints plus 30% latency
  // injection on scoring — the ISSUE's acceptance workload.
  Failpoints::Instance().ArmWithProbability("cadrl/score", 0.1, /*seed=*/17);
  Failpoints::Instance().ArmWithProbability("cadrl/find-paths", 0.1,
                                            /*seed=*/18);
  Failpoints::Instance().ArmLatency(
      "cadrl/score", std::chrono::microseconds{200}, /*p=*/0.3, /*seed=*/19);

  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 256;  // liveness test: no shedding wanted
  options.max_attempts = 3;
  options.backoff_base = std::chrono::microseconds{100};
  options.default_timeout = std::chrono::milliseconds{500};
  options.breaker_failure_threshold = 4;
  options.breaker_cooldown = std::chrono::milliseconds{20};
  options.batch_max = batch_max;
  options.batch_linger = std::chrono::microseconds{100};
  RecommendService service(model, dataset, options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 24;
  std::vector<std::vector<std::future<ServeResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServeRequest req;
        req.id = static_cast<uint64_t>(c) * 1000 + static_cast<uint64_t>(i) +
                 1;
        req.user =
            dataset.users[(static_cast<size_t>(c) * 7 + i) %
                          dataset.users.size()];
        req.k = 5;
        futures[c].push_back(service.Submit(req));
        // Path finding rides the same chaos: the deadline-aware FindPaths
        // must return a terminal status, never crash or hang.
        if (i % 6 == 0) {
          std::vector<eval::RecommendationPath> paths;
          const Status s = model->FindPaths(
              req.user, 3,
              RequestContext::WithTimeout(std::chrono::milliseconds{500}),
              &paths);
          EXPECT_TRUE(s.ok() || s.IsInternal() || s.IsDeadlineExceeded())
              << s.ToString();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Deadline (500ms) + generous grace for queueing/retries on a loaded CI
  // machine. wait_for instead of get(): a hang must fail the test, not
  // wedge it.
  const auto grace = std::chrono::seconds{30};
  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      ASSERT_EQ(f.wait_for(grace), std::future_status::ready)
          << "request did not resolve within deadline + grace";
      const ServeResponse resp = f.get();
      // Terminal answer: a valid user never gets kFailed, degraded answers
      // still carry recommendations.
      EXPECT_NE(resp.level, DegradationLevel::kFailed);
      EXPECT_FALSE(resp.recs.empty());
      EXPECT_TRUE(resp.status.ok() || resp.status.IsResourceExhausted())
          << resp.status.ToString();
      EXPECT_GE(resp.attempts, 0);
      EXPECT_LE(resp.attempts, options.max_attempts);
    }
  }
  service.Stop();
  const RecommendService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.full + stats.cached + stats.popularity,
            stats.requests);  // nobody failed
  if (batch_max > 1) {
    // The chaos must actually have exercised the batcher, not bypassed it.
    EXPECT_GT(stats.batched_steps, 0);
    EXPECT_GT(stats.batch_flushes, 0);
  }
}

TEST_F(ServeChaosTest, EveryRequestResolvesUnderFaultsAndLatency) {
  RunFaultLatencyLiveness(model_, *dataset_, /*batch_max=*/0);
}

TEST_F(ServeChaosTest, EveryRequestResolvesUnderFaultsAndLatencyBatched) {
  RunFaultLatencyLiveness(model_, *dataset_, /*batch_max=*/4);
}

// --- 2. Byte-deterministic degradation decisions -----------------------

struct DecisionKey {
  int level;
  int status_code;
  int primary_code;
  int attempts;
  std::vector<kg::EntityId> items;
  std::vector<double> scores;

  bool operator==(const DecisionKey& other) const {
    return level == other.level && status_code == other.status_code &&
           primary_code == other.primary_code &&
           attempts == other.attempts && items == other.items &&
           scores == other.scores;
  }
};

// One full chaos run: warm the cache fault-free, then arm probabilistic
// faults on the primary and cache stages and replay the same request ids
// from 4 client threads. Returns id -> decision. `batch_max > 1` routes the
// primary stage through the micro-batch scheduler; because the failpoints
// fire on the request's own thread (before any step parks) and the stacked
// dispatch is byte-identical per row, the decision map must not depend on
// batching at all.
std::map<uint64_t, DecisionKey> RunDeterministicChaos(
    core::CadrlRecommender* model, const data::Dataset& dataset,
    int batch_max = 0) {
  Failpoints::Instance().DisarmAll();

  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 1024;        // no shedding: admission is
                                        // timing-dependent by design
  options.max_attempts = 3;
  options.backoff_base = std::chrono::microseconds{0};  // no sleeps
  options.breaker_failure_threshold = 0;  // breakers off: no cross-request
                                          // ordering effects
  options.seed = 11;
  options.top_k = 5;
  options.batch_max = batch_max;
  options.batch_linger = std::chrono::microseconds{100};
  RecommendService service(model, dataset, options);
  EXPECT_TRUE(service.Start().ok());

  // Deterministic warm-up: every user's last-good cache entry is its full
  // answer, so a later cache hit is independent of which faulted requests
  // ran first.
  for (kg::EntityId user : dataset.users) {
    const ServeResponse resp = service.Recommend(user, 5, kNoDeadline);
    EXPECT_EQ(resp.level, DegradationLevel::kFull);
  }

  // 30% primary faults, 50% cache faults: all three ladder levels appear.
  Failpoints::Instance().ArmWithProbability("cadrl/score", 0.3, /*seed=*/9);
  Failpoints::Instance().ArmWithProbability("serve/cache-lookup", 0.5,
                                            /*seed=*/10);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 16;
  std::vector<std::vector<std::future<ServeResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServeRequest req;
        // Explicit ids: the request's fault pattern and jitter stream are
        // a pure function of (service seed, id), not of scheduling.
        req.id = static_cast<uint64_t>(c) * 100 + static_cast<uint64_t>(i) +
                 1;
        req.user = dataset.users[(static_cast<size_t>(c) + 3 * i) %
                                 dataset.users.size()];
        req.k = 5;
        req.timeout = kNoDeadline;  // wall clock never drives decisions
        futures[c].push_back(service.Submit(req));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::map<uint64_t, DecisionKey> decisions;
  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      const ServeResponse resp = f.get();
      DecisionKey key;
      key.level = static_cast<int>(resp.level);
      key.status_code = static_cast<int>(resp.status.code());
      key.primary_code = static_cast<int>(resp.primary_status.code());
      key.attempts = resp.attempts;
      for (const auto& rec : resp.recs) {
        key.items.push_back(rec.item);
        key.scores.push_back(rec.score);
      }
      decisions[resp.request_id] = key;
    }
  }
  service.Stop();
  Failpoints::Instance().DisarmAll();
  return decisions;
}

TEST_F(ServeChaosTest, DegradationDecisionsAreByteDeterministic) {
  const auto first = RunDeterministicChaos(model_, *dataset_);
  const auto second = RunDeterministicChaos(model_, *dataset_);
  ASSERT_EQ(first.size(), second.size());
  int degraded = 0;
  for (const auto& [id, key] : first) {
    auto it = second.find(id);
    ASSERT_NE(it, second.end()) << "request id " << id << " missing";
    EXPECT_TRUE(key == it->second)
        << "decision for request id " << id << " differs between runs";
    if (key.level != static_cast<int>(DegradationLevel::kFull)) ++degraded;
  }
  // The chaos must actually bite: with 30% primary faults and 3 attempts,
  // a visible fraction of requests degrades.
  EXPECT_GT(degraded, 0);
}

// The strongest form of the batching determinism contract: two batched
// chaos runs agree with each other AND with the unbatched run, request by
// request — level, status codes, attempt counts, items, scores. Any leak
// of flush composition into decisions or bytes shows up here.
TEST_F(ServeChaosTest, BatchedDegradationDecisionsMatchUnbatched) {
  const auto unbatched = RunDeterministicChaos(model_, *dataset_);
  const auto batched_a =
      RunDeterministicChaos(model_, *dataset_, /*batch_max=*/4);
  const auto batched_b =
      RunDeterministicChaos(model_, *dataset_, /*batch_max=*/4);
  ASSERT_EQ(unbatched.size(), batched_a.size());
  ASSERT_EQ(unbatched.size(), batched_b.size());
  for (const auto& [id, key] : unbatched) {
    const auto a = batched_a.find(id);
    const auto b = batched_b.find(id);
    ASSERT_NE(a, batched_a.end()) << "request id " << id << " missing";
    ASSERT_NE(b, batched_b.end()) << "request id " << id << " missing";
    EXPECT_TRUE(key == a->second)
        << "batched decision differs from unbatched for request id " << id;
    EXPECT_TRUE(a->second == b->second)
        << "batched runs disagree for request id " << id;
  }
}

// --- 3. Load shedding under a slow dependency --------------------------

TEST_F(ServeChaosTest, BurstAgainstSlowModelShedsButAnswersEverything) {
  // Always-on latency injection: the model is slow-not-dead, so a burst
  // overruns the 2-slot queue and most requests shed to the fast ladder.
  Failpoints::Instance().ArmLatency("cadrl/score",
                                    std::chrono::microseconds{2000});

  ServeOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  options.max_attempts = 1;
  options.breaker_failure_threshold = 0;
  RecommendService service(model_, *dataset_, options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kBurst = 16;
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    ServeRequest req;
    req.user = dataset_->users[static_cast<size_t>(i) %
                               dataset_->users.size()];
    req.k = 5;
    req.timeout = kNoDeadline;
    futures.push_back(service.Submit(req));
  }
  int shed = 0;
  for (auto& f : futures) {
    const ServeResponse resp = f.get();
    EXPECT_FALSE(resp.recs.empty());
    if (resp.load_shed) {
      ++shed;
      EXPECT_TRUE(resp.status.IsResourceExhausted());
      EXPECT_NE(resp.level, DegradationLevel::kFull);
    }
  }
  // 16 instant submits against 1 worker stuck >= 2ms per request and 2
  // queue slots: the burst must shed.
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.stats().load_shed, shed);
  service.Stop();
}

// --- 4. Snapshot hot-swap under concurrent load -------------------------

// DESIGN.md §12 acceptance: ReloadFromCheckpoint swaps the compiled
// inference snapshot while clients hammer the service, and no request ever
// fails or observes a torn model — every answer is byte-identical to one of
// the two checkpoints, never a mixture. With `batch_max > 1` this also
// locks in the scheduler's snapshot-epoch rule (DESIGN.md §13): flush
// groups are keyed by the parked steps' snapshot arena pointers, so a
// stacked dispatch can never mix steps from checkpoints A and B — a torn
// fingerprint here is exactly what a cross-epoch flush would produce.
void RunSnapshotSwapUnderLoad(core::CadrlRecommender* base_model,
                              const data::Dataset& dataset, int batch_max) {
  // Two fully trained models with identical shapes but different weights,
  // checkpointed to disk. Model `serving` starts on A and is swapped
  // between A and B while requests are in flight.
  core::CadrlOptions opts_b = ChaosModelOptions();
  opts_b.seed = 131;
  core::CadrlRecommender model_b(opts_b);
  ASSERT_TRUE(model_b.Fit(dataset).ok());

  const std::string suffix = std::to_string(batch_max) + ".bin";
  const std::string path_a = ::testing::TempDir() + "/chaos_swap_a" + suffix;
  const std::string path_b = ::testing::TempDir() + "/chaos_swap_b" + suffix;
  ASSERT_TRUE(base_model->SaveModel(path_a).ok());
  ASSERT_TRUE(model_b.SaveModel(path_b).ok());

  core::CadrlRecommender serving(ChaosModelOptions());
  ASSERT_TRUE(serving.LoadModel(dataset, path_a).ok());

  // Golden answers per user under each checkpoint (compiled inference is
  // deterministic, so these are the only two byte patterns allowed). The
  // two models must actually disagree somewhere, or the test is vacuous.
  constexpr int kTopK = 5;
  auto fingerprint = [](const std::vector<eval::Recommendation>& recs) {
    std::vector<std::tuple<kg::EntityId, double, size_t>> fp;
    fp.reserve(recs.size());
    for (const auto& r : recs) {
      fp.emplace_back(r.item, r.score, r.path.steps.size());
    }
    return fp;
  };
  std::map<kg::EntityId,
           std::vector<std::tuple<kg::EntityId, double, size_t>>>
      golden_a, golden_b;
  bool models_differ = false;
  for (kg::EntityId user : dataset.users) {
    golden_a[user] = fingerprint(base_model->Recommend(user, kTopK));
    golden_b[user] = fingerprint(model_b.Recommend(user, kTopK));
    models_differ = models_differ || golden_a[user] != golden_b[user];
  }
  ASSERT_TRUE(models_differ)
      << "checkpoints A and B are indistinguishable; swap test is vacuous";

  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 1024;  // no shedding: every answer must be kFull
  options.max_attempts = 1;
  options.breaker_failure_threshold = 0;
  options.top_k = kTopK;
  options.batch_max = batch_max;
  options.batch_linger = std::chrono::microseconds{100};
  RecommendService service(&serving, dataset, options);
  ASSERT_TRUE(service.Start().ok());

  // Reloader thread alternates A/B as fast as it can while 4 client
  // threads stream requests with no deadline.
  std::atomic<bool> done{false};
  std::thread reloader([&] {
    bool to_b = true;
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(
          service.ReloadFromCheckpoint(to_b ? path_b : path_a).ok());
      to_b = !to_b;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 32;
  std::vector<std::vector<std::pair<kg::EntityId, std::future<ServeResponse>>>>
      futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServeRequest req;
        req.user = dataset.users[(static_cast<size_t>(c) * 5 + i) %
                                 dataset.users.size()];
        req.k = kTopK;
        req.timeout = kNoDeadline;
        futures[c].emplace_back(req.user, service.Submit(req));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int from_a = 0, from_b = 0;
  for (auto& per_client : futures) {
    for (auto& [user, f] : per_client) {
      const ServeResponse resp = f.get();
      // No faults, no deadline, no shedding: every request must succeed at
      // full quality on whichever snapshot it started with.
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_EQ(resp.level, DegradationLevel::kFull);
      const auto fp = fingerprint(resp.recs);
      if (fp == golden_a[user]) {
        ++from_a;
      } else if (fp == golden_b[user]) {
        ++from_b;
      } else {
        FAIL() << "torn response for user " << user
               << ": matches neither checkpoint A nor B";
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  reloader.join();
  service.Stop();

  EXPECT_EQ(from_a + from_b, kClients * kRequestsPerClient);
  EXPECT_GT(service.stats().reloads, 0) << "the swap loop never swapped";
  if (batch_max > 1) {
    EXPECT_GT(service.stats().batched_steps, 0);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(ServeChaosTest, SnapshotSwapUnderLoad) {
  RunSnapshotSwapUnderLoad(model_, *dataset_, /*batch_max=*/0);
}

TEST_F(ServeChaosTest, SnapshotSwapUnderLoadBatched) {
  RunSnapshotSwapUnderLoad(model_, *dataset_, /*batch_max=*/4);
}

// --- 5. Shard-dir hot-swap under concurrent load ------------------------

// Same torn-model contract as the checkpoint swap, but through the sharded
// mmap path (DESIGN.md §16): a writer thread alternately compiles model A's
// and model B's weights into ONE shard directory (delta writer + atomic
// manifest) and republishes via ReloadFromShardDir, while clients stream
// requests. Every answer must be byte-identical to checkpoint A or B —
// never a mixture — which exercises the whole epoch chain: atomic manifest
// cutover, per-request snapshot pinning, mapping reuse across delta
// reloads, and unlink-safe old mappings kept alive by in-flight requests.
void RunShardSwapUnderLoad(core::CadrlRecommender* base_model,
                           const data::Dataset& dataset, int batch_max) {
  core::CadrlOptions opts_b = ChaosModelOptions();
  opts_b.seed = 131;
  core::CadrlRecommender model_b(opts_b);
  ASSERT_TRUE(model_b.Fit(dataset).ok());

  const std::string suffix = std::to_string(batch_max);
  const std::string path_a =
      ::testing::TempDir() + "/chaos_shard_a" + suffix + ".bin";
  const std::string dir = ::testing::TempDir() + "/chaos_shard_dir" + suffix;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(base_model->SaveModel(path_a).ok());

  core::CadrlRecommender serving(ChaosModelOptions());
  ASSERT_TRUE(serving.LoadModel(dataset, path_a).ok());

  constexpr int kTopK = 5;
  auto fingerprint = [](const std::vector<eval::Recommendation>& recs) {
    std::vector<std::tuple<kg::EntityId, double, size_t>> fp;
    fp.reserve(recs.size());
    for (const auto& r : recs) {
      fp.emplace_back(r.item, r.score, r.path.steps.size());
    }
    return fp;
  };
  std::map<kg::EntityId,
           std::vector<std::tuple<kg::EntityId, double, size_t>>>
      golden_a, golden_b;
  bool models_differ = false;
  for (kg::EntityId user : dataset.users) {
    golden_a[user] = fingerprint(base_model->Recommend(user, kTopK));
    golden_b[user] = fingerprint(model_b.Recommend(user, kTopK));
    models_differ = models_differ || golden_a[user] != golden_b[user];
  }
  ASSERT_TRUE(models_differ)
      << "checkpoints A and B are indistinguishable; swap test is vacuous";

  // Seed the directory with A so the service starts shard-backed.
  auto compile_into_dir = [&](const core::CadrlRecommender& src) {
    const std::shared_ptr<const infer::CompiledModel> snap =
        src.CurrentSnapshot();
    infer::ShardWriteOptions wopts;
    wopts.shard_rows = 16;  // several shards even on the Tiny graph
    infer::ShardWriteStats wstats;
    return infer::CompileToShardDir(
        src.store()->View(), snap->policy(), snap->score_scale(),
        infer::CompiledModelOptions{snap->precision()}, dir, wopts, &wstats);
  };
  ASSERT_TRUE(compile_into_dir(*base_model).ok());

  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 1024;  // no shedding: every answer must be kFull
  options.max_attempts = 1;
  options.breaker_failure_threshold = 0;
  options.top_k = kTopK;
  options.batch_max = batch_max;
  options.batch_linger = std::chrono::microseconds{100};
  RecommendService service(&serving, dataset, options);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.ReloadFromShardDir(dir).ok());

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    bool to_b = true;
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(compile_into_dir(to_b ? model_b : *base_model).ok());
      ASSERT_TRUE(service.ReloadFromShardDir(dir).ok());
      to_b = !to_b;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 32;
  std::vector<std::vector<std::pair<kg::EntityId, std::future<ServeResponse>>>>
      futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServeRequest req;
        req.user = dataset.users[(static_cast<size_t>(c) * 5 + i) %
                                 dataset.users.size()];
        req.k = kTopK;
        req.timeout = kNoDeadline;
        futures[c].emplace_back(req.user, service.Submit(req));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int from_a = 0, from_b = 0;
  for (auto& per_client : futures) {
    for (auto& [user, f] : per_client) {
      const ServeResponse resp = f.get();
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_EQ(resp.level, DegradationLevel::kFull);
      const auto fp = fingerprint(resp.recs);
      if (fp == golden_a[user]) {
        ++from_a;
      } else if (fp == golden_b[user]) {
        ++from_b;
      } else {
        FAIL() << "torn response for user " << user
               << ": matches neither checkpoint A nor B";
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  swapper.join();
  service.Stop();

  EXPECT_EQ(from_a + from_b, kClients * kRequestsPerClient);
  const RecommendService::Stats stats = service.stats();
  EXPECT_GT(stats.shard_reloads, 0) << "the swap loop never republished";
  EXPECT_GT(stats.shards_remapped, 0);
  EXPECT_GT(stats.shard_count, 0);
  if (batch_max > 1) {
    EXPECT_GT(stats.batched_steps, 0);
  }
  std::remove(path_a.c_str());
  std::filesystem::remove_all(dir, ec);
}

TEST_F(ServeChaosTest, ShardSwapUnderLoad) {
  RunShardSwapUnderLoad(model_, *dataset_, /*batch_max=*/0);
}

TEST_F(ServeChaosTest, ShardSwapUnderLoadBatched) {
  RunShardSwapUnderLoad(model_, *dataset_, /*batch_max=*/4);
}

// --- 5. Breaker transitions match the golden trace ----------------------

TEST_F(ServeChaosTest, BreakerTransitionsMatchGoldenTrace) {
  serve::VirtualTimeSource clock;
  ServeOptions options;
  options.threads = 1;
  options.max_attempts = 1;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown = std::chrono::milliseconds{10};
  options.time_source = &clock;
  RecommendService service(model_, *dataset_, options);
  ASSERT_TRUE(service.Start().ok());

  const kg::EntityId user = dataset_->users[0];
  // Two consecutive primary failures trip the breaker ...
  Failpoints::Instance().Arm("cadrl/score", /*count=*/-1);
  service.Recommend(user, 5, kNoDeadline);
  service.Recommend(user, 5, kNoDeadline);
  EXPECT_EQ(service.primary_breaker().state(), CircuitBreaker::State::kOpen);
  // ... open rejects while the cooldown runs ...
  const ServeResponse rejected = service.Recommend(user, 5, kNoDeadline);
  EXPECT_EQ(rejected.attempts, 0);
  EXPECT_TRUE(rejected.primary_status.IsResourceExhausted());
  // ... after the cooldown a half-open probe runs and fails -> open ...
  clock.Advance(std::chrono::milliseconds{10});
  service.Recommend(user, 5, kNoDeadline);
  // ... and once the fault clears, the next probe closes the breaker.
  clock.Advance(std::chrono::milliseconds{10});
  Failpoints::Instance().DisarmAll();
  const ServeResponse recovered = service.Recommend(user, 5, kNoDeadline);
  EXPECT_EQ(recovered.level, DegradationLevel::kFull);
  EXPECT_EQ(service.primary_breaker().state(),
            CircuitBreaker::State::kClosed);

  const std::vector<std::string> golden = {
      "closed->open",     "open->half_open", "half_open->open",
      "open->half_open",  "half_open->closed"};
  EXPECT_EQ(service.primary_breaker().transitions(), golden);
  EXPECT_EQ(service.primary_breaker().trips(), 2);
  service.Stop();
}

}  // namespace
}  // namespace cadrl
