// Exact-match tests for the kernel layer (util/kernels.h). The kernels
// promise one *documented* summation order — 8 interleaved lanes, tail into
// lanes 0..r-1, fixed fold — independent of backend, block sizes and simd
// width. Each test below recomputes that order from the header's prose
// (not from kernels.cc) and demands bit equality from both backends, so a
// vectorization or blocking change that reorders any addition fails here
// before it can silently shift golden values elsewhere.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/embedding_store.h"
#include "data/generator.h"
#include "grad_check.h"
#include "util/kernels.h"

namespace cadrl {
namespace kernels {
namespace {

// Shape sweep: below one lane block, non-multiple, exactly one block,
// blocks + ragged tail, and a multi-block size.
const int kShapes[] = {1, 3, 8, 17, 64};

// Deterministic value generator (LCG); keeps the tests hermetic without
// <random> engines whose streams vary across standard libraries.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  float Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    // Map the top bits to [-1, 1) with a 2^-20 grid (exact in f32).
    const int32_t v = static_cast<int32_t>(state_ >> 43);
    return static_cast<float>(v) * (1.0f / 1048576.0f);
  }
  std::vector<float> Vec(int n) {
    std::vector<float> out(static_cast<size_t>(n));
    for (float& x : out) x = Next();
    return out;
  }

 private:
  uint64_t state_;
};

uint32_t Bits(float x) { return std::bit_cast<uint32_t>(x); }

void ExpectSameBits(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i]))
        << what << " element " << i << ": " << a[i] << " vs " << b[i];
  }
}

// Runs `body` once per backend, restoring the ambient backend afterwards.
template <typename Fn>
void ForEachBackend(Fn body) {
  const Backend saved = ActiveBackend();
  for (Backend b : {Backend::kScalar, Backend::kBlocked}) {
    SetBackend(b);
    SCOPED_TRACE(BackendName(b));
    body();
  }
  SetBackend(saved);
}

// The documented reduction order, restated from util/kernels.h: 8 strided
// partial sums, ragged tail one term into lanes 0..r-1, fixed fold.
float RefReduce(const std::vector<float>& terms) {
  float s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const int n = static_cast<int>(terms.size());
  const int main = n - n % 8;
  for (int i = 0; i < main; i += 8) {
    for (int l = 0; l < 8; ++l) s[l] += terms[static_cast<size_t>(i + l)];
  }
  for (int l = 0; l < n % 8; ++l) s[l] += terms[static_cast<size_t>(main + l)];
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

float RefDot(const float* x, const float* y, int n) {
  std::vector<float> terms(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) terms[static_cast<size_t>(i)] = x[i] * y[i];
  return RefReduce(terms);
}

// ---------------------------------------------------------------------------
// Reduction kernels vs the documented order.
// ---------------------------------------------------------------------------

TEST(KernelsTest, DotMatchesDocumentedOrder) {
  ForEachBackend([] {
    Lcg rng(7);
    for (int n : kShapes) {
      const auto x = rng.Vec(n);
      const auto y = rng.Vec(n);
      EXPECT_EQ(Bits(Dot(x.data(), y.data(), n)),
                Bits(RefDot(x.data(), y.data(), n)))
          << "n=" << n;
    }
    // A long non-multiple length exercises several full lane blocks + tail.
    const auto x = rng.Vec(1003);
    const auto y = rng.Vec(1003);
    EXPECT_EQ(Bits(Dot(x.data(), y.data(), 1003)),
              Bits(RefDot(x.data(), y.data(), 1003)));
  });
}

TEST(KernelsTest, GemvMatchesPerRowDots) {
  ForEachBackend([] {
    Lcg rng(11);
    for (int m : kShapes) {
      for (int n : kShapes) {
        const auto a = rng.Vec(m * n);
        const auto x = rng.Vec(n);
        std::vector<float> y(static_cast<size_t>(m), 99.0f);
        Gemv(a.data(), m, n, x.data(), y.data());
        std::vector<float> want(static_cast<size_t>(m));
        for (int i = 0; i < m; ++i) {
          want[static_cast<size_t>(i)] = RefDot(a.data() + i * n, x.data(), n);
        }
        ExpectSameBits(y, want, "Gemv");

        // GemvAcc adds the same dots onto the prior contents.
        std::vector<float> acc = rng.Vec(m);
        std::vector<float> want_acc(static_cast<size_t>(m));
        for (int i = 0; i < m; ++i) {
          want_acc[static_cast<size_t>(i)] =
              acc[static_cast<size_t>(i)] + want[static_cast<size_t>(i)];
        }
        GemvAcc(a.data(), m, n, x.data(), acc.data());
        ExpectSameBits(acc, want_acc, "GemvAcc");
      }
    }
  });
}

TEST(KernelsTest, GemmNTAccMatchesRowDots) {
  ForEachBackend([] {
    Lcg rng(13);
    for (int m : kShapes) {
      for (int n : kShapes) {
        for (int k : kShapes) {
          const auto a = rng.Vec(m * k);
          const auto b = rng.Vec(n * k);
          std::vector<float> c = rng.Vec(m * n);
          std::vector<float> want = c;
          for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
              want[static_cast<size_t>(i * n + j)] +=
                  RefDot(a.data() + i * k, b.data() + j * k, k);
            }
          }
          GemmNTAcc(a.data(), b.data(), c.data(), m, n, k);
          ExpectSameBits(c, want, "GemmNTAcc");
        }
      }
    }
  });
}

TEST(KernelsTest, NegSqDistRowsMatchesDocumentedOrder) {
  ForEachBackend([] {
    Lcg rng(17);
    for (int num : kShapes) {
      for (int d : kShapes) {
        const auto rows = rng.Vec(num * d);
        const auto u = rng.Vec(d);
        const auto r = rng.Vec(d);
        std::vector<float> out(static_cast<size_t>(num));
        NegSqDistRows(rows.data(), num, d, u.data(), r.data(), out.data());
        std::vector<float> want(static_cast<size_t>(num));
        for (int i = 0; i < num; ++i) {
          std::vector<float> terms(static_cast<size_t>(d));
          for (int j = 0; j < d; ++j) {
            const float diff = (u[static_cast<size_t>(j)] +
                                r[static_cast<size_t>(j)]) -
                               rows[static_cast<size_t>(i * d + j)];
            terms[static_cast<size_t>(j)] = diff * diff;
          }
          want[static_cast<size_t>(i)] = -RefReduce(terms);
        }
        ExpectSameBits(out, want, "NegSqDistRows");
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Element-wise / ascending-order kernels vs plain loops. These have no
// lane structure: the contract is the historical loop order.
// ---------------------------------------------------------------------------

TEST(KernelsTest, AxpyMatchesPlainLoop) {
  ForEachBackend([] {
    Lcg rng(19);
    for (int n : kShapes) {
      const float alpha = rng.Next();
      const auto x = rng.Vec(n);
      std::vector<float> y = rng.Vec(n);
      std::vector<float> want = y;
      for (int i = 0; i < n; ++i) {
        want[static_cast<size_t>(i)] += alpha * x[static_cast<size_t>(i)];
      }
      Axpy(n, alpha, x.data(), y.data());
      ExpectSameBits(y, want, "Axpy");
    }
  });
}

TEST(KernelsTest, GerAccMatchesOuterProductLoop) {
  ForEachBackend([] {
    Lcg rng(23);
    for (int m : kShapes) {
      for (int n : kShapes) {
        const auto x = rng.Vec(m);
        const auto y = rng.Vec(n);
        std::vector<float> a = rng.Vec(m * n);
        std::vector<float> want = a;
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            want[static_cast<size_t>(i * n + j)] +=
                x[static_cast<size_t>(i)] * y[static_cast<size_t>(j)];
          }
        }
        GerAcc(m, n, x.data(), y.data(), a.data());
        ExpectSameBits(a, want, "GerAcc");
      }
    }
  });
}

TEST(KernelsTest, GemvTAccMatchesAscendingRowLoop) {
  ForEachBackend([] {
    Lcg rng(29);
    for (int m : kShapes) {
      for (int n : kShapes) {
        const auto a = rng.Vec(m * n);
        const auto x = rng.Vec(m);
        std::vector<float> y = rng.Vec(n);
        std::vector<float> want = y;
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            want[static_cast<size_t>(j)] +=
                x[static_cast<size_t>(i)] * a[static_cast<size_t>(i * n + j)];
          }
        }
        GemvTAcc(a.data(), m, n, x.data(), y.data());
        ExpectSameBits(y, want, "GemvTAcc");
      }
    }
  });
}

TEST(KernelsTest, GemmAccMatchesIkjLoop) {
  ForEachBackend([] {
    Lcg rng(31);
    for (int m : kShapes) {
      for (int k : kShapes) {
        for (int p : kShapes) {
          const auto a = rng.Vec(m * k);
          const auto b = rng.Vec(k * p);
          std::vector<float> c = rng.Vec(m * p);
          std::vector<float> want = c;
          for (int i = 0; i < m; ++i) {
            for (int kk = 0; kk < k; ++kk) {
              for (int j = 0; j < p; ++j) {
                want[static_cast<size_t>(i * p + j)] +=
                    a[static_cast<size_t>(i * k + kk)] *
                    b[static_cast<size_t>(kk * p + j)];
              }
            }
          }
          GemmAcc(a.data(), b.data(), c.data(), m, k, p);
          ExpectSameBits(c, want, "GemmAcc");
        }
      }
    }
    // Larger than one cache block in both m and k so the blocked backend's
    // tiling actually splits; the ascending-k order must survive it.
    const int m = 70, k = 300, p = 5;
    const auto a = rng.Vec(m * k);
    const auto b = rng.Vec(k * p);
    std::vector<float> c(static_cast<size_t>(m * p), 0.0f);
    std::vector<float> want = c;
    for (int i = 0; i < m; ++i) {
      for (int kk = 0; kk < k; ++kk) {
        for (int j = 0; j < p; ++j) {
          want[static_cast<size_t>(i * p + j)] +=
              a[static_cast<size_t>(i * k + kk)] *
              b[static_cast<size_t>(kk * p + j)];
        }
      }
    }
    GemmAcc(a.data(), b.data(), c.data(), m, k, p);
    ExpectSameBits(c, want, "GemmAcc(blocked split)");
  });
}

TEST(KernelsTest, GemmTNAccMatchesAscendingRowLoop) {
  ForEachBackend([] {
    Lcg rng(37);
    for (int m : kShapes) {
      for (int k : kShapes) {
        for (int p : kShapes) {
          const auto a = rng.Vec(m * k);
          const auto b = rng.Vec(m * p);
          std::vector<float> c = rng.Vec(k * p);
          std::vector<float> want = c;
          for (int i = 0; i < m; ++i) {
            for (int j = 0; j < k; ++j) {
              for (int q = 0; q < p; ++q) {
                want[static_cast<size_t>(j * p + q)] +=
                    a[static_cast<size_t>(i * k + j)] *
                    b[static_cast<size_t>(i * p + q)];
              }
            }
          }
          GemmTNAcc(a.data(), b.data(), c.data(), m, k, p);
          ExpectSameBits(c, want, "GemmTNAcc");
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Backend plumbing.
// ---------------------------------------------------------------------------

TEST(KernelsTest, SetBackendRoundTrips) {
  const Backend saved = ActiveBackend();
  SetBackend(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_STREQ(BackendName(ActiveBackend()), "scalar");
  SetBackend(Backend::kBlocked);
  EXPECT_EQ(ActiveBackend(), Backend::kBlocked);
  EXPECT_STREQ(BackendName(ActiveBackend()), "blocked");
  SetBackend(saved);
}

TEST(KernelsTest, BackendsAreBitIdentical) {
  // Direct scalar-vs-blocked comparison on an awkward shape (every kernel;
  // the per-kernel tests above already imply this through the shared
  // reference, but this one fails with a clearer message on divergence).
  Lcg rng(41);
  const int m = 17, n = 23, k = 19;
  const auto a = rng.Vec(m * k);
  const auto b = rng.Vec(n * k);
  const auto x = rng.Vec(k);
  const Backend saved = ActiveBackend();

  SetBackend(Backend::kScalar);
  std::vector<float> y_s(static_cast<size_t>(m));
  Gemv(a.data(), m, k, x.data(), y_s.data());
  std::vector<float> c_s(static_cast<size_t>(m * n), 0.0f);
  GemmNTAcc(a.data(), b.data(), c_s.data(), m, n, k);

  SetBackend(Backend::kBlocked);
  std::vector<float> y_b(static_cast<size_t>(m));
  Gemv(a.data(), m, k, x.data(), y_b.data());
  std::vector<float> c_b(static_cast<size_t>(m * n), 0.0f);
  GemmNTAcc(a.data(), b.data(), c_b.data(), m, n, k);

  SetBackend(saved);
  ExpectSameBits(y_s, y_b, "Gemv scalar vs blocked");
  ExpectSameBits(c_s, c_b, "GemmNTAcc scalar vs blocked");
}

// ---------------------------------------------------------------------------
// MatMul backward regression (tests the kernel-routed gradients, including
// the rank-1 dB product that previously read pa->data out of position).
// ---------------------------------------------------------------------------

TEST(KernelsTest, MatMulRank1GradientsMatchNumeric) {
  ForEachBackend([] {
    Lcg rng(43);
    ag::Tensor a = ag::Tensor::FromVector(rng.Vec(3 * 5), {3, 5});
    ag::Tensor b = ag::Tensor::FromVector(rng.Vec(5), {5});
    cadrl::testing::ExpectGradientsMatch(
        {a, b}, [&] { return ag::Sum(ag::MatMul(a, b)); });
  });
}

TEST(KernelsTest, MatMulRank2GradientsMatchNumeric) {
  ForEachBackend([] {
    Lcg rng(47);
    ag::Tensor a = ag::Tensor::FromVector(rng.Vec(4 * 3), {4, 3});
    ag::Tensor b = ag::Tensor::FromVector(rng.Vec(3 * 6), {3, 6});
    cadrl::testing::ExpectGradientsMatch(
        {a, b}, [&] { return ag::Sum(ag::MatMul(a, b)); });
  });
}

// ---------------------------------------------------------------------------
// Batched scoring property: ScoreUserEntities == per-entity ScoreUserEntity
// bit for bit, in every score mode, and UserScoreMemo serves the same bits.
// ---------------------------------------------------------------------------

TEST(KernelsTest, BatchedScoringBitIdenticalToScalarScoring) {
  const data::Dataset dataset =
      data::MustGenerateDataset(data::SyntheticConfig::Tiny());
  embed::TransEOptions topt;
  topt.dim = 12;
  topt.epochs = 2;
  const embed::TransEModel transe =
      embed::TransEModel::Train(dataset.graph, topt);
  core::EmbeddingStore store(&dataset.graph, &transe);

  const kg::EntityId user = dataset.users[0];
  std::vector<kg::EntityId> entities;
  for (kg::EntityId e = 0;
       e < static_cast<kg::EntityId>(dataset.graph.num_entities()) &&
       entities.size() < 97;
       e += 3) {
    entities.push_back(e);
  }
  ASSERT_GT(entities.size(), 10u);

  using Mode = core::EmbeddingStore::ScoreMode;
  for (Mode mode : {Mode::kTranslation, Mode::kDotProduct, Mode::kEnsemble,
                    Mode::kRawTranslation, Mode::kDemandTranslation}) {
    store.set_score_mode(mode);
    ForEachBackend([&] {
      std::vector<float> batched(entities.size());
      store.ScoreUserEntities(user, entities, batched);
      for (size_t i = 0; i < entities.size(); ++i) {
        ASSERT_EQ(Bits(batched[i]),
                  Bits(store.ScoreUserEntity(user, entities[i])))
            << "mode " << static_cast<int>(mode) << " entity " << entities[i];
      }
      // The memo must serve the same bits whether an entity comes in cold
      // through a batch, cold through Score(), or warm from the cache.
      core::UserScoreMemo memo(&store, user);
      const float first = memo.Score(entities[4]);
      ASSERT_EQ(Bits(first), Bits(batched[4]));
      std::vector<float> via_memo(entities.size());
      memo.ScoreBatch(entities, via_memo);
      ExpectSameBits(via_memo, batched, "UserScoreMemo::ScoreBatch");
      ASSERT_EQ(Bits(memo.Score(entities[7])), Bits(batched[7]));
    });
  }
}

// ---------------------------------------------------------------------------
// Quantized row formats (binary16 / int8 with per-row scale+zero-point).
// The contract under test: every fused quantized kernel is bit-identical to
// dequantizing the rows first and running the f32 kernel — the shared
// DequantQ8/F16ToF32 expression makes fusion a pure layout change.
// ---------------------------------------------------------------------------

// Lengths covering every n % 8 residue plus multi-block sizes.
const int kQuantLens[] = {1, 2, 3, 4, 5, 6, 7, 8,
                          9, 10, 11, 12, 13, 14, 15, 64, 131};
// Row counts straddling the blocked backend's kBlockM=32 tile edge.
const int kQuantRows[] = {1, 7, 31, 32, 33, 65};

// Encodes `rows x n` f32 values as int8 rows + decoded per-row scale/zp.
struct Q8Table {
  std::vector<int8_t> q;
  std::vector<float> scales, zps;
  std::vector<float> dequant;  // DequantizeRowQ8 of every row

  Q8Table(const std::vector<float>& x, int rows, int n) {
    q.resize(x.size());
    scales.resize(static_cast<size_t>(rows));
    zps.resize(static_cast<size_t>(rows));
    dequant.resize(x.size());
    for (int i = 0; i < rows; ++i) {
      uint16_t scale_bits = 0, zp_bits = 0;
      QuantizeRowQ8(x.data() + static_cast<size_t>(i) * n, n,
                    q.data() + static_cast<size_t>(i) * n, &scale_bits,
                    &zp_bits);
      scales[static_cast<size_t>(i)] = F16ToF32(scale_bits);
      zps[static_cast<size_t>(i)] = F16ToF32(zp_bits);
      DequantizeRowQ8(q.data() + static_cast<size_t>(i) * n,
                      scales[static_cast<size_t>(i)],
                      zps[static_cast<size_t>(i)], n,
                      dequant.data() + static_cast<size_t>(i) * n);
    }
  }
};

TEST(KernelsTest, F16ConversionRoundTripsAndSpecials) {
  // Exactly representable values survive a f32 -> f16 -> f32 round trip.
  for (float x : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 1024.0f, 65504.0f,
                  0.0009765625f}) {
    EXPECT_EQ(F16ToF32(F32ToF16(x)), x) << x;
  }
  // Conversion is idempotent: re-encoding a decoded f16 changes nothing.
  Lcg rng(53);
  for (int i = 0; i < 200; ++i) {
    const float x = rng.Next() * 100.0f;
    const uint16_t h = F32ToF16(x);
    EXPECT_EQ(F32ToF16(F16ToF32(h)), h);
    // Round-to-nearest-even: error bounded by half a ulp (2^-11 relative
    // for normal values).
    EXPECT_LE(std::abs(F16ToF32(h) - x), std::abs(x) * 0x1p-11f + 0x1p-24f);
  }
  // Overflow saturates to infinity, sign preserved.
  EXPECT_EQ(F16ToF32(F32ToF16(1.0e6f)),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(F16ToF32(F32ToF16(-1.0e6f)),
            -std::numeric_limits<float>::infinity());
}

TEST(KernelsTest, QuantizeRowQ8RoundTripErrorBounds) {
  Lcg rng(59);
  for (int n : kQuantLens) {
    // Random, constant-offset-dominated, and scaled rows.
    std::vector<std::vector<float>> cases;
    cases.push_back(rng.Vec(n));
    {
      std::vector<float> offset = rng.Vec(n);
      for (float& v : offset) v = 300.0f + 0.001f * v;  // tiny spread
      cases.push_back(std::move(offset));
    }
    {
      std::vector<float> wide = rng.Vec(n);
      for (float& v : wide) v *= 1000.0f;
      cases.push_back(std::move(wide));
    }
    for (const auto& x : cases) {
      const Q8Table t(x, 1, n);
      // Error bound: half a code step, plus the worst-case clamp shift from
      // rounding the zero-point to binary16 (|zp| * 2^-11 code units,
      // doubled for slack).
      const float bound =
          t.scales[0] * (0.5f + std::abs(t.zps[0]) * 0x1p-10f) + 1e-6f;
      for (int i = 0; i < n; ++i) {
        EXPECT_LE(std::abs(t.dequant[static_cast<size_t>(i)] -
                           x[static_cast<size_t>(i)]),
                  bound)
            << "n=" << n << " i=" << i;
      }
    }
  }
  // Exactness guarantees: an all-zero row decodes to exact zeros and a
  // constant row to the f16 rounding of the constant.
  for (int n : {1, 5, 8, 13}) {
    const std::vector<float> zeros(static_cast<size_t>(n), 0.0f);
    const Q8Table tz(zeros, 1, n);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(tz.dequant[static_cast<size_t>(i)]), Bits(0.0f));
    }
    const std::vector<float> cst(static_cast<size_t>(n), 0.3137f);
    const Q8Table tc(cst, 1, n);
    const float want = F16ToF32(F32ToF16(0.3137f));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(tc.dequant[static_cast<size_t>(i)]), Bits(want));
    }
  }
}

TEST(KernelsTest, DotQ8AndDotF16MatchDequantizedDot) {
  ForEachBackend([] {
    Lcg rng(61);
    for (int n : kQuantLens) {
      const auto x = rng.Vec(n);
      const auto raw = rng.Vec(n);
      const Q8Table t(raw, 1, n);
      EXPECT_EQ(Bits(DotQ8(x.data(), t.q.data(), t.scales[0], t.zps[0], n)),
                Bits(Dot(x.data(), t.dequant.data(), n)))
          << "DotQ8 n=" << n;

      std::vector<uint16_t> h(static_cast<size_t>(n));
      QuantizeRowF16(raw.data(), n, h.data());
      std::vector<float> deq(static_cast<size_t>(n));
      DequantizeRowF16(h.data(), n, deq.data());
      EXPECT_EQ(Bits(DotF16(x.data(), h.data(), n)),
                Bits(Dot(x.data(), deq.data(), n)))
          << "DotF16 n=" << n;
    }
  });
}

TEST(KernelsTest, GemvQ8AndF16MatchDequantizedGemv) {
  ForEachBackend([] {
    Lcg rng(67);
    for (int m : kQuantRows) {
      for (int n : {5, 8, 11, 24}) {
        const auto x = rng.Vec(n);
        const auto raw = rng.Vec(m * n);
        const Q8Table t(raw, m, n);
        std::vector<float> got(static_cast<size_t>(m), 99.0f);
        GemvQ8(t.q.data(), t.scales.data(), t.zps.data(), m, n, x.data(),
               got.data());
        std::vector<float> want(static_cast<size_t>(m));
        Gemv(t.dequant.data(), m, n, x.data(), want.data());
        ExpectSameBits(got, want, "GemvQ8");

        std::vector<uint16_t> h(raw.size());
        QuantizeRowF16(raw.data(), m * n, h.data());
        std::vector<float> deq(raw.size());
        DequantizeRowF16(h.data(), m * n, deq.data());
        GemvF16(h.data(), m, n, x.data(), got.data());
        Gemv(deq.data(), m, n, x.data(), want.data());
        ExpectSameBits(got, want, "GemvF16");
      }
    }
  });
}

TEST(KernelsTest, GemmNTQ8AccAndF16AccMatchDequantizedGemm) {
  ForEachBackend([] {
    Lcg rng(71);
    for (int m : {1, 3, 9}) {
      for (int n : {1, 4, 33}) {
        for (int k : {5, 8, 13, 24}) {
          const auto a = rng.Vec(m * k);
          const auto raw = rng.Vec(n * k);
          const Q8Table t(raw, n, k);
          std::vector<float> got = rng.Vec(m * n);
          std::vector<float> want = got;
          GemmNTQ8Acc(a.data(), t.q.data(), t.scales.data(), t.zps.data(),
                      got.data(), m, n, k);
          GemmNTAcc(a.data(), t.dequant.data(), want.data(), m, n, k);
          ExpectSameBits(got, want, "GemmNTQ8Acc");

          std::vector<uint16_t> h(raw.size());
          QuantizeRowF16(raw.data(), n * k, h.data());
          std::vector<float> deq(raw.size());
          DequantizeRowF16(h.data(), n * k, deq.data());
          got = rng.Vec(m * n);
          want = got;
          GemmNTF16Acc(a.data(), h.data(), got.data(), m, n, k);
          GemmNTAcc(a.data(), deq.data(), want.data(), m, n, k);
          ExpectSameBits(got, want, "GemmNTF16Acc");
        }
      }
    }
  });
}

TEST(KernelsTest, NegSqDistRowsQ8AndF16MatchDequantizedRows) {
  ForEachBackend([] {
    Lcg rng(73);
    for (int num : kQuantRows) {
      for (int d : {5, 8, 12, 15, 24}) {
        const auto u = rng.Vec(d);
        const auto r = rng.Vec(d);
        const auto raw = rng.Vec(num * d);
        const Q8Table t(raw, num, d);
        std::vector<float> got(static_cast<size_t>(num));
        std::vector<float> want(static_cast<size_t>(num));
        NegSqDistRowsQ8(t.q.data(), t.scales.data(), t.zps.data(), num, d,
                        u.data(), r.data(), got.data());
        NegSqDistRows(t.dequant.data(), num, d, u.data(), r.data(),
                      want.data());
        ExpectSameBits(got, want, "NegSqDistRowsQ8");

        std::vector<uint16_t> h(raw.size());
        QuantizeRowF16(raw.data(), num * d, h.data());
        std::vector<float> deq(raw.size());
        DequantizeRowF16(h.data(), num * d, deq.data());
        NegSqDistRowsF16(h.data(), num, d, u.data(), r.data(), got.data());
        NegSqDistRows(deq.data(), num, d, u.data(), r.data(), want.data());
        ExpectSameBits(got, want, "NegSqDistRowsF16");
      }
    }
  });
}

TEST(KernelsTest, QuantizedScalarVsBlockedBitIdentical) {
  // Direct scalar-vs-blocked comparison on awkward shapes: the dequantized
  // references above already imply it (the f32 kernels are backend-exact),
  // but this fails with a clearer message on divergence.
  Lcg rng(79);
  const int m = 33, d = 13;
  const auto x = rng.Vec(d);
  const auto u = rng.Vec(d);
  const auto r = rng.Vec(d);
  const auto raw = rng.Vec(m * d);
  const Q8Table t(raw, m, d);
  const Backend saved = ActiveBackend();

  SetBackend(Backend::kScalar);
  const float dot_s = DotQ8(x.data(), t.q.data(), t.scales[0], t.zps[0], d);
  std::vector<float> dist_s(static_cast<size_t>(m));
  NegSqDistRowsQ8(t.q.data(), t.scales.data(), t.zps.data(), m, d, u.data(),
                  r.data(), dist_s.data());

  SetBackend(Backend::kBlocked);
  const float dot_b = DotQ8(x.data(), t.q.data(), t.scales[0], t.zps[0], d);
  std::vector<float> dist_b(static_cast<size_t>(m));
  NegSqDistRowsQ8(t.q.data(), t.scales.data(), t.zps.data(), m, d, u.data(),
                  r.data(), dist_b.data());

  SetBackend(saved);
  EXPECT_EQ(Bits(dot_s), Bits(dot_b));
  ExpectSameBits(dist_s, dist_b, "NegSqDistRowsQ8 scalar vs blocked");
}

TEST(KernelsDeathTest, SetBackendRefusesWhileBackendPinned) {
  EXPECT_EQ(ActiveBackendPins(), 0);
  {
    BackendPin pin;
    EXPECT_EQ(ActiveBackendPins(), 1);
    EXPECT_DEATH(SetBackend(Backend::kScalar), "BackendPin");
  }
  EXPECT_EQ(ActiveBackendPins(), 0);
  // With the pin released, switching works again.
  const Backend saved = ActiveBackend();
  SetBackend(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  SetBackend(saved);
}

}  // namespace
}  // namespace kernels
}  // namespace cadrl
