#include <cmath>

#include <gtest/gtest.h>

#include "core/cggnn.h"
#include "core/embedding_store.h"
#include "core/environment.h"
#include "core/policy.h"
#include "core/reward.h"
#include "data/generator.h"

namespace cadrl {
namespace core {
namespace {

class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(
        data::MustGenerateDataset(data::SyntheticConfig::Tiny()));
    embed::TransEOptions topt;
    topt.dim = 12;
    topt.epochs = 4;
    transe_ = new embed::TransEModel(
        embed::TransEModel::Train(dataset_->graph, topt));
    store_ = new EmbeddingStore(&dataset_->graph, transe_);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete transe_;
    delete dataset_;
    store_ = nullptr;
    transe_ = nullptr;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
  static embed::TransEModel* transe_;
  static EmbeddingStore* store_;
};

data::Dataset* CoreFixture::dataset_ = nullptr;
embed::TransEModel* CoreFixture::transe_ = nullptr;
EmbeddingStore* CoreFixture::store_ = nullptr;

// ---------- EmbeddingStore ----------

TEST_F(CoreFixture, StoreMirrorsTransE) {
  EXPECT_EQ(store_->dim(), 12);
  const auto a = store_->Entity(3);
  const auto b = transe_->EntityVec(3);
  for (int i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
  }
}

TEST_F(CoreFixture, SelfLoopRelationIsZero) {
  const auto v = store_->RelationVec(kg::Relation::kSelfLoop);
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST_F(CoreFixture, SetItemRepresentationOverridesRow) {
  EmbeddingStore store(&dataset_->graph, transe_);
  const kg::EntityId item =
      dataset_->graph.EntitiesOfType(kg::EntityType::kItem)[0];
  std::vector<float> vec(12, 0.5f);
  store.SetItemRepresentation(item, vec);
  for (float x : store.Entity(item)) EXPECT_FLOAT_EQ(x, 0.5f);
  // Category refresh folds the new row into its category mean.
  store.RefreshCategoryVectors();
  const kg::CategoryId c = dataset_->graph.CategoryOf(item);
  ASSERT_NE(c, kg::kInvalidCategory);
  const auto cat = store.Category(c);
  EXPECT_TRUE(std::isfinite(cat[0]));
}

TEST_F(CoreFixture, TensorsMatchSpans) {
  const ag::Tensor t = store_->EntityTensor(5);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_FALSE(t.requires_grad());
  EXPECT_FLOAT_EQ(t.at(0), store_->Entity(5)[0]);
}

TEST_F(CoreFixture, ScoreUserEntityIsNonPositive) {
  const kg::EntityId user = dataset_->users[0];
  const kg::EntityId item = dataset_->train_items[0][0];
  EXPECT_LE(store_->ScoreUserEntity(user, item), 0.0f);
}

TEST_F(CoreFixture, ScoreModesBehaveAsDocumented) {
  EmbeddingStore store(&dataset_->graph, transe_);
  const kg::EntityId user = dataset_->users[0];
  const kg::EntityId item = dataset_->train_items[0][0];

  // Default: translation, non-positive.
  EXPECT_EQ(store.score_mode(), EmbeddingStore::ScoreMode::kTranslation);
  const float translation = store.ScoreUserEntity(user, item);
  EXPECT_LE(translation, 0.0f);

  // Raw translation matches translation while rows are untouched.
  store.set_score_mode(EmbeddingStore::ScoreMode::kRawTranslation);
  EXPECT_FLOAT_EQ(store.ScoreUserEntity(user, item), translation);

  // Dot product mode returns the inner product.
  store.set_score_mode(EmbeddingStore::ScoreMode::kDotProduct);
  const auto u = store.Entity(user);
  const auto v = store.Entity(item);
  float expected_dot = 0.0f;
  for (int i = 0; i < store.dim(); ++i) {
    expected_dot += u[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(store.ScoreUserEntity(user, item), expected_dot, 1e-5f);

  // Ensemble = dot - w * raw_distance.
  store.set_score_mode(EmbeddingStore::ScoreMode::kEnsemble);
  store.set_ensemble_translation_weight(2.0f);
  EXPECT_NEAR(store.ScoreUserEntity(user, item),
              expected_dot + 2.0f * translation, 1e-4f);
}

TEST_F(CoreFixture, RawTranslationIgnoresRowEdits) {
  EmbeddingStore store(&dataset_->graph, transe_);
  const kg::EntityId user = dataset_->users[0];
  const kg::EntityId item = dataset_->train_items[0][0];
  store.set_score_mode(EmbeddingStore::ScoreMode::kRawTranslation);
  const float before = store.ScoreUserEntity(user, item);
  std::vector<float> zeros(static_cast<size_t>(store.dim()), 0.0f);
  store.SetEntityRow(item, zeros);
  EXPECT_FLOAT_EQ(store.ScoreUserEntity(user, item), before)
      << "raw translation must read the untouched TransE rows";
  // ...while kTranslation sees the edit.
  store.set_score_mode(EmbeddingStore::ScoreMode::kTranslation);
  EXPECT_NE(store.ScoreUserEntity(user, item), before);
}

// ---------- Environments ----------

TEST_F(CoreFixture, EntityActionsIncludeSelfLoopFirst) {
  EntityEnvironment env(&dataset_->graph, store_, 50);
  const kg::EntityId user = dataset_->users[0];
  auto actions = env.ValidActions(user, user);
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].relation, kg::Relation::kSelfLoop);
  EXPECT_EQ(actions[0].dst, user);
  EXPECT_LE(static_cast<int>(actions.size()), 50);
}

TEST_F(CoreFixture, EntityActionsMatchGraphEdges) {
  EntityEnvironment env(&dataset_->graph, store_, 50);
  const kg::EntityId user = dataset_->users[0];
  auto actions = env.ValidActions(user, user);
  for (size_t i = 1; i < actions.size(); ++i) {
    EXPECT_TRUE(dataset_->graph.HasEdge(user, actions[i].relation,
                                        actions[i].dst));
  }
}

TEST_F(CoreFixture, EntityActionCapEnforced) {
  EntityEnvironment env(&dataset_->graph, store_, 4);
  // Pick a high-degree entity (an item).
  kg::EntityId busiest = 0;
  for (kg::EntityId e = 0; e < dataset_->graph.num_entities(); ++e) {
    if (dataset_->graph.Degree(e) > dataset_->graph.Degree(busiest)) {
      busiest = e;
    }
  }
  ASSERT_GT(dataset_->graph.Degree(busiest), 4);
  auto actions = env.ValidActions(dataset_->users[0], busiest);
  EXPECT_EQ(actions.size(), 4u);
  EXPECT_EQ(actions[0].relation, kg::Relation::kSelfLoop);
}

TEST_F(CoreFixture, EntityActionsDeterministic) {
  EntityEnvironment env(&dataset_->graph, store_, 10);
  const kg::EntityId user = dataset_->users[1];
  auto a = env.ValidActions(user, user);
  auto b = env.ValidActions(user, user);
  EXPECT_EQ(a, b);
}

TEST_F(CoreFixture, CategoryActionsIncludeStayFirstAndCapped) {
  CategoryEnvironment env(&dataset_->category_graph, store_, 3);
  auto actions = env.ValidActions(dataset_->users[0], 0);
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0], 0);
  EXPECT_LE(static_cast<int>(actions.size()), 3);
}

TEST_F(CoreFixture, CategoryActionsAreNeighbors) {
  CategoryEnvironment env(&dataset_->category_graph, store_, 10);
  auto actions = env.ValidActions(dataset_->users[0], 0);
  for (size_t i = 1; i < actions.size(); ++i) {
    EXPECT_TRUE(dataset_->category_graph.Connected(0, actions[i]));
  }
}

// ---------- Rewards ----------

TEST(RewardTest, KlOfIdenticalDistributionsIsZero) {
  std::vector<float> p = {0.25f, 0.25f, 0.5f};
  EXPECT_NEAR(KlDivergence(p, p), 0.0f, 1e-6f);
}

TEST(RewardTest, KlIsPositiveForDifferentDistributions) {
  std::vector<float> p = {0.9f, 0.1f};
  std::vector<float> q = {0.1f, 0.9f};
  EXPECT_GT(KlDivergence(p, q), 0.5f);
}

TEST(RewardTest, KlHandlesZerosInQ) {
  std::vector<float> p = {0.5f, 0.5f};
  std::vector<float> q = {1.0f, 0.0f};
  const float kl = KlDivergence(p, q);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 0.0f);
}

TEST(RewardTest, PartnerRewardRange) {
  std::vector<float> p = {0.9f, 0.1f};
  std::vector<float> q = {0.1f, 0.9f};
  const float influential = CounterfactualPartnerReward(p, q);
  const float neutral = CounterfactualPartnerReward(p, p);
  EXPECT_NEAR(neutral, 0.5f, 1e-5f);
  EXPECT_GT(influential, neutral);
  EXPECT_LT(influential, 1.0f);
}

TEST(RewardTest, CosineConsistencyBounds) {
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {0.0f, 1.0f};
  std::vector<float> c = {2.0f, 0.0f};
  EXPECT_NEAR(CosineConsistency(a, c), 1.0f, 1e-5f);
  EXPECT_NEAR(CosineConsistency(a, b), 0.0f, 1e-5f);
  std::vector<float> zero = {0.0f, 0.0f};
  EXPECT_TRUE(std::isfinite(CosineConsistency(a, zero)));
}

// ---------- Policy networks ----------

TEST_F(CoreFixture, PolicyShapesAndDistributions) {
  Rng rng(3);
  PolicyConfig config;
  config.dim = 12;
  config.hidden = 16;
  SharedPolicyNetworks policy(config, &rng);
  const ag::Tensor user = store_->EntityTensor(dataset_->users[0]);
  const ag::Tensor cat = store_->CategoryTensor(0);
  const ag::Tensor rel = store_->RelationTensor(kg::Relation::kSelfLoop);
  const ag::Tensor ent = user;
  auto state = policy.InitialState(user, cat, rel, ent);
  EXPECT_EQ(state.cat.h.numel(), 16);
  EXPECT_EQ(state.ent.h.numel(), 16);

  std::vector<ag::Tensor> cat_actions = {store_->CategoryTensor(0),
                                         store_->CategoryTensor(1)};
  const ag::Tensor cat_logits =
      policy.CategoryLogits(state, user, cat, cat_actions);
  EXPECT_EQ(cat_logits.numel(), 2);

  std::vector<ag::Tensor> ent_actions;
  for (int i = 0; i < 3; ++i) {
    ent_actions.push_back(ag::Concat({rel, store_->EntityTensor(i)}));
  }
  const ag::Tensor ent_logits =
      policy.EntityLogits(state, ent, rel, cat, ent_actions);
  EXPECT_EQ(ent_logits.numel(), 3);
  const ag::Tensor probs = ag::Softmax(ent_logits);
  float total = 0.0f;
  for (int64_t i = 0; i < 3; ++i) total += probs.at(i);
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST_F(CoreFixture, CategoryConditioningChangesEntityDistribution) {
  Rng rng(4);
  PolicyConfig config;
  config.dim = 12;
  config.hidden = 16;
  SharedPolicyNetworks policy(config, &rng);
  const ag::Tensor user = store_->EntityTensor(dataset_->users[0]);
  const ag::Tensor rel = store_->RelationTensor(kg::Relation::kSelfLoop);
  auto state = policy.InitialState(user, store_->CategoryTensor(0), rel, user);
  std::vector<ag::Tensor> actions;
  for (int i = 0; i < 4; ++i) {
    actions.push_back(ag::Concat({rel, store_->EntityTensor(i)}));
  }
  const ag::Tensor l0 = policy.EntityLogits(state, user, rel,
                                            store_->CategoryTensor(0), actions);
  const ag::Tensor l1 = policy.EntityLogits(state, user, rel,
                                            store_->CategoryTensor(1), actions);
  bool differs = false;
  for (int64_t i = 0; i < 4; ++i) {
    if (std::abs(l0.at(i) - l1.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs)
      << "entity head must depend on the category milestone";
}

TEST_F(CoreFixture, SharedHistoryCouplingMatters) {
  Rng rng(5);
  PolicyConfig with;
  with.dim = 12;
  with.hidden = 16;
  with.share_history = true;
  PolicyConfig without = with;
  without.share_history = false;

  auto run = [&](const PolicyConfig& cfg, Rng seed_rng) {
    SharedPolicyNetworks policy(cfg, &seed_rng);
    const ag::Tensor user = store_->EntityTensor(dataset_->users[0]);
    const ag::Tensor rel = store_->RelationTensor(kg::Relation::kSelfLoop);
    auto state =
        policy.InitialState(user, store_->CategoryTensor(0), rel, user);
    policy.Advance(&state, user, store_->CategoryTensor(1),
                   store_->RelationTensor(kg::Relation::kPurchase),
                   store_->EntityTensor(3));
    return state;
  };
  auto a = run(with, Rng(42));
  auto b = run(without, Rng(42));
  bool differs = false;
  for (int64_t i = 0; i < 16; ++i) {
    if (std::abs(a.ent.h.at(i) - b.ent.h.at(i)) > 1e-7f) differs = true;
  }
  EXPECT_TRUE(differs) << "RSHI ablation must actually change the dynamics";
}

TEST(PolicyConfigTest, Validation) {
  PolicyConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.dim = 1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

// ---------- CGGNN ----------

TEST_F(CoreFixture, CggnnForwardShapes) {
  CggnnOptions options;
  options.ggnn_layers = 2;
  options.cgan_layers = 1;
  options.epochs = 0;
  Cggnn cggnn(&dataset_->graph, transe_, options);
  auto reps = cggnn.ComputeItemRepresentations();
  EXPECT_EQ(static_cast<int64_t>(reps.size()),
            dataset_->graph.CountOfType(kg::EntityType::kItem));
  for (const auto& r : reps) {
    EXPECT_EQ(r.numel(), 12);
    for (int64_t i = 0; i < r.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(r.at(i)));
    }
  }
}

TEST_F(CoreFixture, CggnnAblationSwitchesChangeOutput) {
  CggnnOptions base;
  base.ggnn_layers = 1;
  base.cgan_layers = 1;
  base.epochs = 0;
  Cggnn full(&dataset_->graph, transe_, base);

  CggnnOptions no_ggnn = base;
  no_ggnn.use_ggnn = false;
  Cggnn rggnn(&dataset_->graph, transe_, no_ggnn);

  CggnnOptions no_cgan = base;
  no_cgan.use_cgan = false;
  Cggnn rcgan(&dataset_->graph, transe_, no_cgan);

  auto rep_full = full.ComputeItemRepresentations();
  auto rep_rggnn = rggnn.ComputeItemRepresentations();
  auto rep_rcgan = rcgan.ComputeItemRepresentations();

  auto differs = [](const ag::Tensor& a, const ag::Tensor& b) {
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (std::abs(a.at(i) - b.at(i)) > 1e-6f) return true;
    }
    return false;
  };
  EXPECT_TRUE(differs(rep_full[0], rep_rggnn[0]));
  EXPECT_TRUE(differs(rep_full[0], rep_rcgan[0]));
}

TEST_F(CoreFixture, CggnnWithBothModulesOffIsTransE) {
  CggnnOptions options;
  options.use_ggnn = false;
  options.use_cgan = false;
  options.epochs = 0;
  Cggnn cggnn(&dataset_->graph, transe_, options);
  auto reps = cggnn.ComputeItemRepresentations();
  const kg::EntityId item0 =
      dataset_->graph.EntitiesOfType(kg::EntityType::kItem)[0];
  const auto expected = transe_->EntityVec(item0);
  for (int i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(reps[0].at(i), expected[static_cast<size_t>(i)]);
  }
}

TEST_F(CoreFixture, CggnnBprTrainingReducesLoss) {
  CggnnOptions options;
  options.ggnn_layers = 1;
  options.cgan_layers = 1;
  options.epochs = 10;
  options.pairs_per_epoch = 96;
  options.lr = 0.02f;
  Cggnn cggnn(&dataset_->graph, transe_, options);
  ASSERT_TRUE(cggnn.Train(*dataset_).ok());
  const auto& losses = cggnn.epoch_losses();
  ASSERT_EQ(losses.size(), 10u);
  // Compare the mean of the first and last thirds to smooth sampling noise.
  float early = (losses[0] + losses[1] + losses[2]) / 3.0f;
  float late = (losses[7] + losses[8] + losses[9]) / 3.0f;
  EXPECT_LT(late, early);
  // Representations are cached and finite.
  const kg::EntityId item0 =
      dataset_->graph.EntitiesOfType(kg::EntityType::kItem)[0];
  for (float x : cggnn.Representation(item0)) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST_F(CoreFixture, CggnnItemIndexMapping) {
  CggnnOptions options;
  options.epochs = 0;
  Cggnn cggnn(&dataset_->graph, transe_, options);
  const auto& items = dataset_->graph.EntitiesOfType(kg::EntityType::kItem);
  EXPECT_EQ(cggnn.ItemIndex(items[5]), 5);
  EXPECT_EQ(cggnn.ItemIndex(dataset_->users[0]), -1);
}

TEST(CggnnOptionsTest, Validation) {
  CggnnOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.delta = 1.5f;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CggnnOptions();
  o.ggnn_layers = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CggnnOptions();
  o.neighbor_cap = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace cadrl
