// Quickstart: generate a small synthetic Amazon-like dataset, train the
// CADRL recommender, and print explainable top-5 recommendations.
//
//   ./build/examples/quickstart

#include <iostream>

#include "core/cadrl.h"
#include "data/generator.h"
#include "eval/evaluator.h"

int main() {
  using namespace cadrl;

  // 1. A dataset: a knowledge graph with users/items/brands/features, item
  //    category labels, and a 70/30 train/test interaction split.
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  data::Dataset dataset = data::MustGenerateDataset(config);
  std::cout << "Dataset '" << dataset.name << "': "
            << dataset.graph.num_entities() << " entities, "
            << dataset.graph.num_triples() << " triples, "
            << dataset.graph.num_categories() << " categories\n\n";

  // 2. Configure and train CADRL. Options default to the paper's
  //    hyper-parameters; only the training budget is set here.
  core::CadrlOptions options;
  options.transe.dim = 16;
  options.transe.epochs = 6;
  options.cggnn.epochs = 8;
  options.episodes_per_user = 4;
  options.max_path_length = 5;
  core::CadrlRecommender model(options);
  const Status status = model.Fit(dataset);
  if (!status.ok()) {
    std::cerr << "training failed: " << status.ToString() << "\n";
    return 1;
  }

  // 3. Recommend: every recommendation carries its reasoning path over the
  //    knowledge graph.
  const kg::EntityId user = dataset.users[0];
  std::cout << "Top-5 recommendations for user " << user << ":\n";
  for (const eval::Recommendation& rec : model.Recommend(user, 5)) {
    std::cout << "  item " << rec.item << " (score "
              << static_cast<int>(rec.score * 100) / 100.0 << ")\n"
              << "    why: " << eval::FormatPath(dataset.graph, rec.path)
              << "\n";
  }

  // 4. Evaluate against the held-out test interactions.
  const eval::EvalResult result =
      eval::EvaluateRecommender(&model, dataset, 10);
  std::cout << "\nTest metrics over " << result.users_evaluated
            << " users: NDCG@10 " << result.ndcg << "%, Recall@10 "
            << result.recall << "%, HR@10 " << result.hit_rate
            << "%, Prec@10 " << result.precision << "%\n";
  return 0;
}
