// Trains CADRL against representative baselines from each family on the
// Beauty-like preset and prints a side-by-side metric table plus one
// explanation per path-capable model.
//
//   ./build/examples/model_comparison

#include <iostream>
#include <memory>

#include "baselines/heteroembed.h"
#include "baselines/rl_baselines.h"
#include "core/cadrl.h"
#include "data/generator.h"
#include "eval/evaluator.h"
#include "util/table.h"

int main() {
  using namespace cadrl;
  data::Dataset dataset =
      data::MustGenerateDataset(data::SyntheticConfig::BeautySim());
  std::cout << "Training 4 models on '" << dataset.name << "' ("
            << dataset.num_users() << " users, "
            << dataset.graph.num_triples() << " triples)...\n";

  baselines::RlBudget budget;
  budget.dim = 24;
  budget.transe_epochs = 8;
  budget.cggnn_epochs = 12;
  budget.episodes_per_user = 4;

  std::vector<std::unique_ptr<eval::Recommender>> models;
  {
    baselines::HeteroEmbedOptions o;
    o.transe.dim = budget.dim;
    o.transe.epochs = budget.transe_epochs;
    models.push_back(std::make_unique<baselines::HeteroEmbedRecommender>(o));
  }
  models.push_back(baselines::MakePgpr(budget));
  models.push_back(baselines::MakeUcpr(budget));
  models.push_back(baselines::MakeCadrlForDataset(budget, dataset.name));

  TablePrinter table("Model comparison on " + dataset.name + " (@10, %)");
  table.SetHeader({"Model", "NDCG", "Recall", "HR", "Prec."});
  for (auto& model : models) {
    const Status status = model->Fit(dataset);
    if (!status.ok()) {
      std::cerr << model->name() << ": " << status.ToString() << "\n";
      continue;
    }
    const eval::EvalResult r = eval::EvaluateRecommender(model.get(),
                                                         dataset, 10, 100);
    table.AddRow({r.model, TablePrinter::Fmt(r.ndcg),
                  TablePrinter::Fmt(r.recall), TablePrinter::Fmt(r.hit_rate),
                  TablePrinter::Fmt(r.precision)});
  }
  table.Print(std::cout);

  std::cout << "\nSample explanations (user " << dataset.users[0] << "):\n";
  for (auto& model : models) {
    if (!model->SupportsPaths()) continue;
    auto recs = model->Recommend(dataset.users[0], 1);
    if (recs.empty() || recs[0].path.empty()) continue;
    std::cout << "  " << model->name() << ": "
              << eval::FormatPath(dataset.graph, recs[0].path) << "\n";
  }
  return 0;
}
