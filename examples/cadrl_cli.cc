// Command-line front end for the library: generate datasets to disk, train
// and evaluate CADRL on a saved dataset, or produce explained
// recommendations for one user.
//
//   cadrl_cli generate <beauty|cellphones|clothing|tiny> <path>
//   cadrl_cli eval <dataset-path> [--checkpoint_dir <dir>] [--resume]
//              [--threads N]
//   cadrl_cli train <dataset-path> <model-path> [--checkpoint_dir <dir>]
//              [--resume] [--threads N]
//   cadrl_cli recommend <dataset-path> <user-entity-id> [k] [model-path]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/cadrl.h"
#include "data/generator.h"
#include "data/serialize.h"
#include "eval/evaluator.h"
#include "eval/path_metrics.h"

namespace {

using namespace cadrl;

int Usage() {
  std::cerr
      << "usage:\n"
         "  cadrl_cli generate <beauty|cellphones|clothing|tiny> <path>\n"
         "  cadrl_cli eval <dataset-path> [--checkpoint_dir <dir>] "
         "[--resume] [--threads N]\n"
         "  cadrl_cli train <dataset-path> <model-path> "
         "[--checkpoint_dir <dir>] [--resume] [--threads N]\n"
         "  cadrl_cli recommend <dataset-path> <user-entity-id> [k] "
         "[model-path]\n"
         "\n"
         "  --checkpoint_dir <dir>  write epoch checkpoints during training\n"
         "  --resume                restart from the latest valid checkpoint"
         " in --checkpoint_dir\n"
         "  --threads N             worker threads for training and"
         " evaluation\n"
         "                          (0 = one per hardware thread; results"
         " are\n"
         "                          identical for every N)\n";
  return 2;
}

// Removes --checkpoint_dir <dir> / --resume / --threads N from `args` and
// fills `ckpt` / `threads`. Returns false on a malformed flag.
bool ParseCommonFlags(std::vector<std::string>* args, CheckpointOptions* ckpt,
                      int* threads) {
  ckpt->resume = false;
  *threads = 1;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args->size(); ++i) {
    const std::string& a = (*args)[i];
    if (a == "--checkpoint_dir") {
      if (i + 1 >= args->size()) return false;
      ckpt->dir = (*args)[++i];
    } else if (a == "--resume") {
      ckpt->resume = true;
    } else if (a == "--threads") {
      if (i + 1 >= args->size()) return false;
      char* end = nullptr;
      const long v = std::strtol((*args)[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 0) {
        std::cerr << "--threads expects a non-negative integer\n";
        return false;
      }
      *threads = static_cast<int>(v);
    } else {
      rest.push_back(a);
    }
  }
  if (ckpt->resume && ckpt->dir.empty()) {
    std::cerr << "--resume requires --checkpoint_dir\n";
    return false;
  }
  *args = std::move(rest);
  return true;
}

core::CadrlOptions DefaultOptions(const std::string& dataset_name,
                                  int threads = 1) {
  core::CadrlOptions o;
  // One knob drives every parallel stage; results are identical for any
  // value (see DESIGN.md "Concurrency model").
  o.threads = threads;
  o.transe.threads = threads;
  o.transe.dim = 24;
  o.transe.epochs = 8;
  o.cggnn.epochs = 12;
  o.episodes_per_user = 4;
  if (dataset_name == "Clothing") {
    o.max_path_length = 7;
    o.cggnn.delta = 0.3f;
    o.alpha_pe = 0.4f;
    o.alpha_pc = 0.4f;
  }
  return o;
}

int Generate(const std::string& preset, const std::string& path) {
  data::SyntheticConfig config;
  if (preset == "beauty") {
    config = data::SyntheticConfig::BeautySim();
  } else if (preset == "cellphones") {
    config = data::SyntheticConfig::CellPhonesSim();
  } else if (preset == "clothing") {
    config = data::SyntheticConfig::ClothingSim();
  } else if (preset == "tiny") {
    config = data::SyntheticConfig::Tiny();
  } else {
    return Usage();
  }
  data::Dataset dataset;
  Status status = data::GenerateDataset(config, &dataset);
  if (status.ok()) status = data::SaveDataset(dataset, path);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  const data::DatasetStats stats = ComputeStats(dataset);
  std::cout << "wrote " << path << ": " << stats.num_entities
            << " entities, " << stats.num_triples << " triples, "
            << stats.num_interactions << " interactions\n";
  return 0;
}

int TrainModel(const std::string& path, const CheckpointOptions& ckpt,
               int threads, core::CadrlRecommender** out,
               data::Dataset* dataset) {
  Status status = data::LoadDataset(path, dataset);
  if (!status.ok()) {
    std::cerr << "error loading " << path << ": " << status.ToString()
              << "\n";
    return 1;
  }
  auto* model =
      new core::CadrlRecommender(DefaultOptions(dataset->name, threads));
  std::cout << "training CADRL on '" << dataset->name << "' ("
            << dataset->num_users() << " users)...\n";
  if (ckpt.enabled()) {
    std::cout << "checkpointing to " << ckpt.dir
              << (ckpt.resume ? " (resuming if possible)" : "") << "\n";
  }
  status = model->Fit(*dataset, ckpt);
  if (!status.ok()) {
    std::cerr << "error training: " << status.ToString() << "\n";
    delete model;
    return 1;
  }
  *out = model;
  return 0;
}

int Eval(const std::string& path, const CheckpointOptions& ckpt,
         int threads) {
  data::Dataset dataset;
  core::CadrlRecommender* model = nullptr;
  if (int rc = TrainModel(path, ckpt, threads, &model, &dataset); rc != 0) {
    return rc;
  }
  const eval::EvalResult r =
      eval::EvaluateRecommender(model, dataset, 10, 0, threads);
  std::cout << "NDCG@10 " << r.ndcg << "%  Recall@10 " << r.recall
            << "%  HR@10 " << r.hit_rate << "%  Prec@10 " << r.precision
            << "%  (" << r.users_evaluated << " users)\n";
  delete model;
  return 0;
}

int Train(const std::string& dataset_path, const std::string& model_path,
          const CheckpointOptions& ckpt, int threads) {
  data::Dataset dataset;
  core::CadrlRecommender* model = nullptr;
  if (int rc = TrainModel(dataset_path, ckpt, threads, &model, &dataset);
      rc != 0) {
    return rc;
  }
  const Status status = model->SaveModel(model_path);
  delete model;
  if (!status.ok()) {
    std::cerr << "error saving: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "model written to " << model_path << "\n";
  return 0;
}

int Recommend(const std::string& path, const std::string& user_arg, int k,
              const std::string& model_path) {
  data::Dataset dataset;
  core::CadrlRecommender* model = nullptr;
  if (!model_path.empty()) {
    Status status = data::LoadDataset(path, &dataset);
    if (status.ok()) {
      model = new core::CadrlRecommender(DefaultOptions(dataset.name));
      status = model->LoadModel(dataset, model_path);
    }
    if (!status.ok()) {
      std::cerr << "error loading model: " << status.ToString() << "\n";
      delete model;
      return 1;
    }
  } else if (int rc = TrainModel(path, CheckpointOptions(), /*threads=*/1,
                                 &model, &dataset);
             rc != 0) {
    return rc;
  }
  const kg::EntityId user =
      static_cast<kg::EntityId>(std::atoll(user_arg.c_str()));
  if (dataset.UserIndex(user) < 0) {
    std::cerr << "entity " << user << " is not a user of this dataset; "
              << "valid ids start at " << dataset.users.front() << "\n";
    delete model;
    return 1;
  }
  std::vector<eval::RecommendationPath> paths;
  for (const auto& rec : model->Recommend(user, k)) {
    std::cout << "item " << rec.item << "  score "
              << static_cast<int>(rec.score * 1000) / 1000.0 << "\n  "
              << eval::FormatPath(dataset.graph, rec.path) << "\n";
    paths.push_back(rec.path);
  }
  const eval::PathQuality q = eval::EvaluatePaths(dataset.graph, paths);
  std::cout << "paths: " << q.num_valid << "/" << q.num_paths
            << " valid, mean length "
            << static_cast<int>(q.mean_length * 100) / 100.0 << "\n";
  delete model;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  cadrl::CheckpointOptions ckpt;
  int threads = 1;
  if (!ParseCommonFlags(&args, &ckpt, &threads)) return Usage();
  if (command == "generate" && args.size() == 2) {
    return Generate(args[0], args[1]);
  }
  if (command == "eval" && args.size() == 1) {
    return Eval(args[0], ckpt, threads);
  }
  if (command == "train" && args.size() == 2) {
    return Train(args[0], args[1], ckpt, threads);
  }
  if (command == "recommend" && args.size() >= 2 && args.size() <= 4) {
    return Recommend(args[0], args[1],
                     args.size() >= 3 ? std::atoi(args[2].c_str()) : 5,
                     args.size() == 4 ? args[3] : "");
  }
  return Usage();
}
