// Command-line front end for the library: generate datasets to disk, train
// and evaluate CADRL on a saved dataset, produce explained recommendations
// for one user, or drive the deadline-aware serving layer under a synthetic
// (optionally chaotic) request stream.
//
//   cadrl_cli generate <beauty|cellphones|clothing|tiny> <path>
//   cadrl_cli eval <dataset-path> [--checkpoint_dir <dir>] [--resume]
//              [--threads N]
//   cadrl_cli train <dataset-path> <model-path> [--checkpoint_dir <dir>]
//              [--resume] [--threads N]
//   cadrl_cli recommend <dataset-path> <user-entity-id> [k] [model-path]
//   cadrl_cli snapshot compile <dataset-path> <model-path> <shard-dir>
//              [--shard_rows N] [--precision <p>] [--threads N] [--verify]
//   cadrl_cli serve <dataset-path> [model-path] [--threads N]
//              [--requests N] [--timeout_ms N] [--fail_p P]
//              [--latency_us N] [--latency_p P] [--seed S]
//              [--reload_from <model-path>] [--shard_dir <dir>]
//              [--reload_every_ms N]
//              [--batch_max N] [--batch_linger_us N] [--precision <p>]
//              [--adaptive_admission] [--metrics_every_ms N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cadrl.h"
#include "data/generator.h"
#include "data/serialize.h"
#include "eval/evaluator.h"
#include "eval/path_metrics.h"
#include "infer/precision.h"
#include "infer/shard_layout.h"
#include "serve/recommend_service.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace {

using namespace cadrl;

int Usage() {
  std::cerr
      << "usage:\n"
         "  cadrl_cli generate <beauty|cellphones|clothing|tiny> <path>\n"
         "  cadrl_cli eval <dataset-path> [--checkpoint_dir <dir>] "
         "[--resume] [--threads N]\n"
         "  cadrl_cli train <dataset-path> <model-path> "
         "[--checkpoint_dir <dir>] [--resume] [--threads N]\n"
         "  cadrl_cli recommend <dataset-path> <user-entity-id> [k] "
         "[model-path]\n"
         "  cadrl_cli snapshot compile <dataset-path> <model-path> "
         "<shard-dir>\n"
         "             [--shard_rows N] [--precision <p>] [--threads N] "
         "[--verify]\n"
         "  cadrl_cli serve <dataset-path> [model-path] [--threads N] "
         "[--requests N]\n"
         "             [--timeout_ms N] [--fail_p P] [--latency_us N] "
         "[--latency_p P] [--seed S]\n"
         "\n"
         "  --checkpoint_dir <dir>  write epoch checkpoints during training\n"
         "  --resume                restart from the latest valid checkpoint"
         " in --checkpoint_dir\n"
         "  --threads N             worker threads for training, evaluation"
         " and serving\n"
         "                          (0 = one per hardware thread; training/"
         "eval results\n"
         "                          are identical for every N)\n"
         "  --requests N            serve: synthetic requests to replay"
         " (default 200)\n"
         "  --timeout_ms N          serve: per-request deadline in ms"
         " (default 250)\n"
         "  --fail_p P              serve: probabilistic fault injection on"
         " scoring\n"
         "  --latency_us N          serve: injected scoring delay in"
         " microseconds\n"
         "  --latency_p P           serve: probability of the injected delay"
         " (default 1)\n"
         "  --seed S                serve: seed for the service and the"
         " injected chaos\n"
         "  --reload_from <path>    serve: hot-swap the serving model from"
         " this checkpoint\n"
         "                          while the request stream runs (e.g. a"
         " file a trainer\n"
         "                          republishes); in-flight requests finish"
         " on the old model\n"
         "  --shard_dir <dir>       serve: poll this compiled shard"
         " directory\n"
         "                          (cadrl_cli snapshot compile) and"
         " republish the\n"
         "                          serving snapshot zero-parse whenever its"
         " manifest\n"
         "                          changes; a delta publish remaps only the"
         " changed\n"
         "                          shards\n"
         "  --reload_every_ms N     serve: reload/poll period in ms"
         " (default 200;\n"
         "                          needs --reload_from or --shard_dir)\n"
         "  --batch_max N           serve: micro-batch up to N concurrent"
         " requests'\n"
         "                          beam steps per stacked dispatch (default"
         " 0 = off;\n"
         "                          results are byte-identical either way)\n"
         "  --batch_linger_us N     serve: longest a parked step waits for"
         " peers\n"
         "                          (default 200; a lone request never"
         " waits)\n"
         "  --precision <p>         serve / snapshot compile: row format of"
         " the\n"
         "                          published inference snapshot: f32, f16"
         " or int8.\n"
         "                          The flag always beats CADRL_PRECISION"
         " (the env\n"
         "                          var is the default when the flag is"
         " absent) and\n"
         "                          applies from the first publish; training"
         " stays\n"
         "                          f32\n"
         "  --adaptive_admission    serve: AIMD admission limiter +"
         " deadline-aware\n"
         "                          early shedding (DESIGN.md §15)\n"
         "  --metrics_every_ms N    serve: dump Prometheus metrics"
         " (MetricsText) to\n"
         "                          stdout every N ms, and once at the end"
         " of the run\n";
  return 2;
}

// Removes --checkpoint_dir <dir> / --resume / --threads N from `args` and
// fills `ckpt` / `threads`. Returns false on a malformed flag. Unknown
// arguments are kept for the command-specific parsers.
bool ParseCommonFlags(std::vector<std::string>* args, CheckpointOptions* ckpt,
                      int* threads) {
  ckpt->resume = false;
  *threads = 1;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args->size(); ++i) {
    const std::string& a = (*args)[i];
    if (a == "--checkpoint_dir") {
      if (i + 1 >= args->size()) return false;
      ckpt->dir = (*args)[++i];
    } else if (a == "--resume") {
      ckpt->resume = true;
    } else if (a == "--threads") {
      if (i + 1 >= args->size()) return false;
      char* end = nullptr;
      const long v = std::strtol((*args)[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 0) {
        std::cerr << "--threads expects a non-negative integer\n";
        return false;
      }
      *threads = static_cast<int>(v);
    } else {
      rest.push_back(a);
    }
  }
  if (ckpt->resume && ckpt->dir.empty()) {
    std::cerr << "--resume requires --checkpoint_dir\n";
    return false;
  }
  *args = std::move(rest);
  return true;
}

core::CadrlOptions DefaultOptions(const std::string& dataset_name,
                                  int threads = 1) {
  core::CadrlOptions o;
  // One knob drives every parallel stage; results are identical for any
  // value (see DESIGN.md "Concurrency model").
  o.threads = threads;
  o.transe.threads = threads;
  o.transe.dim = 24;
  o.transe.epochs = 8;
  o.cggnn.epochs = 12;
  o.episodes_per_user = 4;
  if (dataset_name == "Clothing") {
    o.max_path_length = 7;
    o.cggnn.delta = 0.3f;
    o.alpha_pe = 0.4f;
    o.alpha_pc = 0.4f;
  }
  return o;
}

int Generate(const std::string& preset, const std::string& path) {
  data::SyntheticConfig config;
  if (preset == "beauty") {
    config = data::SyntheticConfig::BeautySim();
  } else if (preset == "cellphones") {
    config = data::SyntheticConfig::CellPhonesSim();
  } else if (preset == "clothing") {
    config = data::SyntheticConfig::ClothingSim();
  } else if (preset == "tiny") {
    config = data::SyntheticConfig::Tiny();
  } else {
    return Usage();
  }
  data::Dataset dataset;
  Status status = data::GenerateDataset(config, &dataset);
  if (status.ok()) status = data::SaveDataset(dataset, path);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  const data::DatasetStats stats = ComputeStats(dataset);
  std::cout << "wrote " << path << ": " << stats.num_entities
            << " entities, " << stats.num_triples << " triples, "
            << stats.num_interactions << " interactions\n";
  return 0;
}

// Applies a --precision flag value to a freshly constructed model, BEFORE
// Fit/LoadModel publishes the first snapshot: the flag always beats
// CADRL_PRECISION (which seeded the model's default), and no snapshot is
// ever built at the wrong precision and republished after the fact.
void ApplyPrecisionFlag(const std::string& precision,
                        core::CadrlRecommender* model) {
  if (precision.empty()) return;  // keep the CADRL_PRECISION / f32 default
  infer::Precision p = infer::Precision::kF32;
  const bool ok = infer::ParsePrecision(precision, &p);
  CADRL_CHECK(ok) << "--precision validated at flag parse";
  model->set_snapshot_precision(p);
}

int TrainModel(const std::string& path, const CheckpointOptions& ckpt,
               int threads, std::unique_ptr<core::CadrlRecommender>* out,
               data::Dataset* dataset, const std::string& precision = "") {
  Status status = data::LoadDataset(path, dataset);
  if (!status.ok()) {
    std::cerr << "error loading " << path << ": " << status.ToString()
              << "\n";
    return 1;
  }
  auto model = std::make_unique<core::CadrlRecommender>(
      DefaultOptions(dataset->name, threads));
  ApplyPrecisionFlag(precision, model.get());
  std::cout << "training CADRL on '" << dataset->name << "' ("
            << dataset->num_users() << " users)...\n";
  if (ckpt.enabled()) {
    std::cout << "checkpointing to " << ckpt.dir
              << (ckpt.resume ? " (resuming if possible)" : "") << "\n";
  }
  status = model->Fit(*dataset, ckpt);
  if (!status.ok()) {
    std::cerr << "error training: " << status.ToString() << "\n";
    return 1;
  }
  *out = std::move(model);
  return 0;
}

// Loads `model_path` when given, otherwise trains from scratch.
int LoadOrTrainModel(const std::string& dataset_path,
                     const std::string& model_path, int threads,
                     std::unique_ptr<core::CadrlRecommender>* out,
                     data::Dataset* dataset,
                     const std::string& precision = "") {
  if (model_path.empty()) {
    return TrainModel(dataset_path, CheckpointOptions(), threads, out,
                      dataset, precision);
  }
  Status status = data::LoadDataset(dataset_path, dataset);
  if (status.ok()) {
    *out = std::make_unique<core::CadrlRecommender>(
        DefaultOptions(dataset->name, threads));
    ApplyPrecisionFlag(precision, out->get());
    status = (*out)->LoadModel(*dataset, model_path);
  }
  if (!status.ok()) {
    std::cerr << "error loading model: " << status.ToString() << "\n";
    out->reset();
    return 1;
  }
  return 0;
}

int Eval(const std::string& path, const CheckpointOptions& ckpt,
         int threads) {
  data::Dataset dataset;
  std::unique_ptr<core::CadrlRecommender> model;
  if (int rc = TrainModel(path, ckpt, threads, &model, &dataset); rc != 0) {
    return rc;
  }
  const eval::EvalResult r =
      eval::EvaluateRecommender(model.get(), dataset, 10, 0, threads);
  std::cout << "NDCG@10 " << r.ndcg << "%  Recall@10 " << r.recall
            << "%  HR@10 " << r.hit_rate << "%  Prec@10 " << r.precision
            << "%  (" << r.users_evaluated << " users)\n";
  return 0;
}

int Train(const std::string& dataset_path, const std::string& model_path,
          const CheckpointOptions& ckpt, int threads) {
  data::Dataset dataset;
  std::unique_ptr<core::CadrlRecommender> model;
  if (int rc = TrainModel(dataset_path, ckpt, threads, &model, &dataset);
      rc != 0) {
    return rc;
  }
  const Status status = model->SaveModel(model_path);
  if (!status.ok()) {
    std::cerr << "error saving: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "model written to " << model_path << "\n";
  return 0;
}

int Recommend(const std::string& path, const std::string& user_arg, int k,
              const std::string& model_path) {
  data::Dataset dataset;
  std::unique_ptr<core::CadrlRecommender> model;
  if (int rc = LoadOrTrainModel(path, model_path, /*threads=*/1, &model,
                                &dataset);
      rc != 0) {
    return rc;
  }
  const kg::EntityId user =
      static_cast<kg::EntityId>(std::atoll(user_arg.c_str()));
  if (dataset.UserIndex(user) < 0) {
    std::cerr << "entity " << user << " is not a user of this dataset; "
              << "valid ids start at " << dataset.users.front() << "\n";
    return 1;
  }
  std::vector<eval::RecommendationPath> paths;
  for (const auto& rec : model->Recommend(user, k)) {
    std::cout << "item " << rec.item << "  score "
              << static_cast<int>(rec.score * 1000) / 1000.0 << "\n  "
              << eval::FormatPath(dataset.graph, rec.path) << "\n";
    paths.push_back(rec.path);
  }
  const eval::PathQuality q = eval::EvaluatePaths(dataset.graph, paths);
  std::cout << "paths: " << q.num_valid << "/" << q.num_paths
            << " valid, mean length "
            << static_cast<int>(q.mean_length * 100) / 100.0 << "\n";
  return 0;
}

// `cadrl_cli snapshot compile`: compile a trained model into the
// relocatable shard-dir snapshot format (DESIGN.md §16). Recompiling over
// an existing directory is a delta publish: shards whose bytes are
// unchanged are skipped and a `serve --shard_dir` poller remaps only the
// republished ones.
int SnapshotCompile(const std::string& dataset_path,
                    const std::string& model_path, const std::string& dir,
                    int threads, std::vector<std::string> flag_args) {
  int64_t shard_rows = 0;  // 0 keeps the model's default
  std::string precision;
  bool verify = false;
  for (size_t i = 0; i < flag_args.size(); ++i) {
    const std::string& a = flag_args[i];
    if (a == "--shard_rows" && i + 1 < flag_args.size()) {
      shard_rows = std::atoll(flag_args[++i].c_str());
      if (shard_rows < 1) {
        std::cerr << "--shard_rows expects a positive integer\n";
        return 2;
      }
    } else if (a == "--precision" && i + 1 < flag_args.size()) {
      precision = flag_args[++i];
      infer::Precision p;
      if (!infer::ParsePrecision(precision, &p)) {
        std::cerr << "--precision must be f32, f16 or int8\n";
        return 2;
      }
    } else if (a == "--verify") {
      verify = true;
    } else {
      std::cerr << "unknown snapshot compile flag: " << a << "\n";
      return 2;
    }
  }

  data::Dataset dataset;
  std::unique_ptr<core::CadrlRecommender> model;
  if (int rc = LoadOrTrainModel(dataset_path, model_path, threads, &model,
                                &dataset, precision);
      rc != 0) {
    return rc;
  }

  infer::ShardWriteStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  Status status = model->CompileSnapshotToDir(dir, shard_rows, &stats);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!status.ok()) {
    std::cerr << "error compiling shards: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "compiled " << dir << " gen " << stats.generation << ": "
            << stats.shards_written << "/" << stats.shards_total
            << " shards written (" << stats.shards_reused << " unchanged), "
            << stats.bytes_written << " B in "
            << static_cast<int>(ms * 100) / 100.0 << "ms at "
            << infer::PrecisionName(model->snapshot_precision()) << "\n";

  if (verify) {
    infer::ShardLoadOptions lopts;
    lopts.verify_payload = true;  // full payload CRC scan, not just headers
    std::shared_ptr<const infer::CompiledModel> check;
    status = infer::LoadFromShardDir(dir, lopts, nullptr, &check);
    if (!status.ok()) {
      std::cerr << "verify failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "verified " << check->shard_stats().shard_count
              << " shards + meta, " << check->shard_stats().mapped_bytes
              << " B mapped\n";
  }
  return 0;
}

struct ServeFlags {
  int requests = 200;
  int timeout_ms = 250;
  double fail_p = 0.0;
  int latency_us = 0;
  double latency_p = 1.0;
  uint64_t seed = 11;
  std::string reload_from;
  std::string shard_dir;  // poll a compiled shard dir for zero-parse reloads
  int reload_every_ms = 200;
  int batch_max = 0;  // <= 1 serves unbatched
  int batch_linger_us = 200;
  // Empty keeps the CADRL_PRECISION (or f32) default.
  std::string precision;
  bool adaptive_admission = false;
  int metrics_every_ms = 0;  // 0 = no periodic dump
};

bool ParseServeFlags(std::vector<std::string>* args, ServeFlags* flags) {
  std::vector<std::string> rest;
  auto next_value = [&](size_t* i) -> const char* {
    return *i + 1 < args->size() ? (*args)[++*i].c_str() : nullptr;
  };
  for (size_t i = 0; i < args->size(); ++i) {
    const std::string& a = (*args)[i];
    const char* v = nullptr;
    if (a == "--requests" && (v = next_value(&i))) {
      flags->requests = std::atoi(v);
    } else if (a == "--timeout_ms" && (v = next_value(&i))) {
      flags->timeout_ms = std::atoi(v);
    } else if (a == "--fail_p" && (v = next_value(&i))) {
      flags->fail_p = std::atof(v);
    } else if (a == "--latency_us" && (v = next_value(&i))) {
      flags->latency_us = std::atoi(v);
    } else if (a == "--latency_p" && (v = next_value(&i))) {
      flags->latency_p = std::atof(v);
    } else if (a == "--seed" && (v = next_value(&i))) {
      flags->seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--reload_from" && (v = next_value(&i))) {
      flags->reload_from = v;
    } else if (a == "--shard_dir" && (v = next_value(&i))) {
      flags->shard_dir = v;
    } else if (a == "--reload_every_ms" && (v = next_value(&i))) {
      flags->reload_every_ms = std::atoi(v);
    } else if (a == "--batch_max" && (v = next_value(&i))) {
      flags->batch_max = std::atoi(v);
    } else if (a == "--batch_linger_us" && (v = next_value(&i))) {
      flags->batch_linger_us = std::atoi(v);
    } else if (a == "--precision" && (v = next_value(&i))) {
      flags->precision = v;
    } else if (a == "--adaptive_admission") {
      flags->adaptive_admission = true;
    } else if (a == "--metrics_every_ms" && (v = next_value(&i))) {
      flags->metrics_every_ms = std::atoi(v);
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "unknown or incomplete flag: " << a << "\n";
      return false;
    } else {
      rest.push_back(a);
    }
  }
  if (flags->requests < 1 || flags->fail_p < 0.0 || flags->fail_p > 1.0 ||
      flags->latency_p < 0.0 || flags->latency_p > 1.0 ||
      flags->latency_us < 0 || flags->reload_every_ms < 1 ||
      flags->batch_max < 0 || flags->batch_linger_us < 0 ||
      flags->metrics_every_ms < 0) {
    std::cerr << "serve flag out of range\n";
    return false;
  }
  if (!flags->precision.empty()) {
    infer::Precision p;
    if (!infer::ParsePrecision(flags->precision, &p)) {
      std::cerr << "--precision must be f32, f16 or int8\n";
      return false;
    }
  }
  if (!flags->reload_from.empty() && !flags->shard_dir.empty()) {
    std::cerr << "--reload_from and --shard_dir are mutually exclusive\n";
    return false;
  }
  *args = std::move(rest);
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

// Replays a synthetic request stream (4 client threads, users round-robin)
// against a RecommendService, optionally with injected faults/latency, and
// prints the degradation mix plus per-level latency percentiles.
int Serve(const std::string& dataset_path, const std::string& model_path,
          int threads, const ServeFlags& flags) {
  data::Dataset dataset;
  std::unique_ptr<core::CadrlRecommender> model;
  // --precision is applied before load/train so the first published
  // snapshot is already at the requested row format.
  if (int rc = LoadOrTrainModel(dataset_path, model_path, threads, &model,
                                &dataset, flags.precision);
      rc != 0) {
    return rc;
  }

  Failpoints::Instance().DisarmAll();
  if (flags.fail_p > 0.0) {
    Failpoints::Instance().ArmWithProbability("cadrl/score", flags.fail_p,
                                              flags.seed);
  }
  if (flags.latency_us > 0) {
    Failpoints::Instance().ArmLatency(
        "cadrl/score", std::chrono::microseconds{flags.latency_us},
        flags.latency_p, flags.seed + 1);
  }

  serve::ServeOptions options;
  options.threads = threads;
  options.default_timeout = std::chrono::milliseconds{flags.timeout_ms};
  options.seed = flags.seed;
  options.batch_max = flags.batch_max;
  options.batch_linger = std::chrono::microseconds{flags.batch_linger_us};
  options.admission.enabled = flags.adaptive_admission;
  serve::RecommendService service(model.get(), dataset, options);
  if (const Status s = service.Start(); !s.ok()) {
    std::cerr << "error starting service: " << s.ToString() << "\n";
    return 1;
  }

  std::cout << "serving " << flags.requests << " requests ("
            << options.threads << " workers, " << flags.timeout_ms
            << "ms deadline";
  if (flags.fail_p > 0.0) std::cout << ", fault p=" << flags.fail_p;
  if (flags.latency_us > 0) {
    std::cout << ", +" << flags.latency_us << "us latency p="
              << flags.latency_p;
  }
  if (!flags.reload_from.empty()) {
    std::cout << ", reloading " << flags.reload_from << " every "
              << flags.reload_every_ms << "ms";
  }
  if (!flags.shard_dir.empty()) {
    std::cout << ", polling shard dir " << flags.shard_dir << " every "
              << flags.reload_every_ms << "ms";
  }
  if (service.batching_enabled()) {
    std::cout << ", micro-batching max=" << flags.batch_max << " linger="
              << flags.batch_linger_us << "us";
  }
  if (flags.adaptive_admission) std::cout << ", adaptive admission";
  std::cout << ")...\n";

  // Optional metrics scraper stand-in: dumps the Prometheus exposition to
  // stdout on a fixed period, the way a sidecar would scrape /metrics.
  std::atomic<bool> metrics_done{false};
  std::thread metrics_dumper;
  if (flags.metrics_every_ms > 0) {
    metrics_dumper = std::thread([&] {
      while (!metrics_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds{flags.metrics_every_ms});
        if (metrics_done.load(std::memory_order_relaxed)) break;
        std::cout << "# --- metrics dump ---\n" << service.MetricsText();
      }
    });
  }

  // Live model reload: while the request stream replays, a publisher
  // thread hot-swaps the serving snapshot from --reload_from — the
  // checkpoint a trainer would republish in production. Failures (e.g. the
  // file does not exist yet) leave the current snapshot serving.
  std::atomic<bool> reloads_done{false};
  int64_t reload_failures = 0;
  std::thread reloader;
  if (!flags.reload_from.empty() || !flags.shard_dir.empty()) {
    reloader = std::thread([&] {
      while (!reloads_done.load(std::memory_order_relaxed)) {
        const Status s = flags.shard_dir.empty()
                             ? service.ReloadFromCheckpoint(flags.reload_from)
                             : service.ReloadFromShardDir(flags.shard_dir);
        if (!s.ok()) ++reload_failures;
        std::this_thread::sleep_for(
            std::chrono::milliseconds{flags.reload_every_ms});
      }
    });
  }

  constexpr int kClients = 4;
  std::vector<std::vector<serve::ServeResponse>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<serve::ServeResponse>> futures;
      for (int i = c; i < flags.requests; i += kClients) {
        serve::ServeRequest req;
        req.id = static_cast<uint64_t>(i) + 1;
        req.user =
            dataset.users[static_cast<size_t>(i) % dataset.users.size()];
        futures.push_back(service.Submit(req));
      }
      responses[c].reserve(futures.size());
      for (auto& f : futures) responses[c].push_back(f.get());
    });
  }
  for (std::thread& t : clients) t.join();
  if (reloader.joinable()) {
    reloads_done.store(true, std::memory_order_relaxed);
    reloader.join();
  }
  if (metrics_dumper.joinable()) {
    metrics_done.store(true, std::memory_order_relaxed);
    metrics_dumper.join();
  }
  // Final exposition before Stop() clears in-flight state, so the dump
  // reflects the whole run.
  const std::string final_metrics =
      flags.metrics_every_ms > 0 ? service.MetricsText() : std::string();
  service.Stop();
  Failpoints::Instance().DisarmAll();

  // Latencies per degradation level, then the percentile table.
  std::vector<std::vector<double>> latencies(4);
  for (const auto& per_client : responses) {
    for (const auto& resp : per_client) {
      latencies[static_cast<size_t>(resp.level)].push_back(resp.latency_ms);
    }
  }
  const serve::RecommendService::Stats stats = service.stats();
  std::cout << "served " << stats.requests << " requests: " << stats.full
            << " full, " << stats.cached << " cached, " << stats.popularity
            << " popularity, " << stats.failed << " failed; "
            << stats.load_shed << " shed, " << stats.retries << " retries, "
            << stats.breaker_rejections << " breaker rejections\n"
            << "breaker trips: primary "
            << service.primary_breaker().trips() << ", cache "
            << service.cache_breaker().trips() << "\n"
            << "serving arena: "
            << infer::PrecisionName(model->snapshot_precision()) << ", "
            << stats.arena_store_row_bytes << " B rows + "
            << stats.arena_store_scale_bytes << " B scales + "
            << stats.arena_policy_param_bytes << " B policy\n";
  if (flags.adaptive_admission) {
    const serve::AdmissionController::Snapshot adm =
        service.admission().snapshot();
    std::cout << "admission: limit " << adm.limit << " (x"
              << adm.increases << " increase, x" << adm.decreases
              << " decrease), " << stats.early_sheds << " early + "
              << stats.limit_sheds << " limit + " << stats.queue_full_sheds
              << " queue-full + " << stats.queue_timeout_sheds
              << " queue-timeout sheds\n";
  }
  if (!flags.reload_from.empty()) {
    std::cout << "model reloads: " << stats.reloads << " succeeded, "
              << reload_failures << " failed\n";
  }
  if (!flags.shard_dir.empty()) {
    std::cout << "shard reloads: " << stats.shard_reloads
              << " published (" << stats.shards_remapped << " remapped + "
              << stats.shards_reused << " reused shards), "
              << reload_failures << " failed polls; serving gen "
              << stats.shard_generation << ", " << stats.shard_count
              << " shards, " << stats.shard_mapped_bytes << " B mapped\n";
  }
  if (service.batching_enabled()) {
    const serve::BatchScheduler::Stats batch = service.batch_stats();
    std::cout << "micro-batching: " << batch.steps << " steps in "
              << batch.flushes << " flushes (max batch "
              << batch.max_batch_observed << ", forced "
              << batch.forced_flushes << ", linger p95 ~"
              << batch.linger_p95_us << "us)\n";
  }
  for (int level = 0; level < 4; ++level) {
    auto& lat = latencies[static_cast<size_t>(level)];
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    std::cout << "  " << serve::DegradationLevelName(
                             static_cast<serve::DegradationLevel>(level))
              << ": n=" << lat.size() << "  p50 "
              << Percentile(lat, 0.50) << "ms  p95 "
              << Percentile(lat, 0.95) << "ms  p99 "
              << Percentile(lat, 0.99) << "ms\n";
  }
  if (!final_metrics.empty()) {
    std::cout << "# --- final metrics ---\n" << final_metrics;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  cadrl::CheckpointOptions ckpt;
  int threads = 1;
  if (!ParseCommonFlags(&args, &ckpt, &threads)) return Usage();
  if (command == "generate" && args.size() == 2) {
    return Generate(args[0], args[1]);
  }
  if (command == "eval" && args.size() == 1) {
    return Eval(args[0], ckpt, threads);
  }
  if (command == "train" && args.size() == 2) {
    return Train(args[0], args[1], ckpt, threads);
  }
  if (command == "recommend" && args.size() >= 2 && args.size() <= 4) {
    return Recommend(args[0], args[1],
                     args.size() >= 3 ? std::atoi(args[2].c_str()) : 5,
                     args.size() == 4 ? args[3] : "");
  }
  if (command == "snapshot" && args.size() >= 4 && args[0] == "compile") {
    return SnapshotCompile(
        args[1], args[2], args[3], threads,
        std::vector<std::string>(args.begin() + 4, args.end()));
  }
  if (command == "serve") {
    ServeFlags flags;
    if (!ParseServeFlags(&args, &flags)) return Usage();
    if (args.empty() || args.size() > 2) return Usage();
    return Serve(args[0], args.size() == 2 ? args[1] : "", threads, flags);
  }
  return Usage();
}
