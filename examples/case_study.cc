// Case study in the spirit of the paper's Fig. 1 / Fig. 7: a hand-built
// sports-shopping knowledge graph where the item a user will buy next sits
// across a category boundary. Prints the full ranked candidate list of
// CADRL (with its multi-hop cross-category reasoning paths) against a
// 3-hop single-agent PGPR, so the rank of the held-out target and the
// length/shape of each explanation are directly visible.
//
//   ./build/examples/case_study

#include <iostream>
#include <map>
#include <string>

#include "baselines/rl_baselines.h"
#include "core/cadrl.h"
#include "data/dataset.h"

namespace {

using namespace cadrl;

struct World {
  data::Dataset dataset;
  std::map<kg::EntityId, std::string> names;
  kg::EntityId user2;
  kg::EntityId jersey;
};

// The Fig. 1 fragment: users with the same shopping preferences, items in
// the "shoes", "equipment" and "apparel" categories, and a 5-hop path from
// User 2 to Michael Jordan's Jersey.
World BuildWorld() {
  World w;
  kg::KnowledgeGraph& g = w.dataset.graph;
  auto add = [&](kg::EntityType type, const std::string& name) {
    const kg::EntityId id = g.AddEntity(type);
    w.names[id] = name;
    return id;
  };
  const kg::EntityId user1 = add(kg::EntityType::kUser, "User1");
  const kg::EntityId user2 = add(kg::EntityType::kUser, "User2");
  const kg::EntityId user3 = add(kg::EntityType::kUser, "User3");
  // Category 0: basketball shoes; 1: equipment; 2: apparel.
  const kg::EntityId aj3 = add(kg::EntityType::kItem, "AJ_III");
  const kg::EntityId aj4 = add(kg::EntityType::kItem, "AJ_IV");
  const kg::EntityId ball = add(kg::EntityType::kItem, "AJ_Basketball");
  const kg::EntityId headband = add(kg::EntityType::kItem, "AJ_Headband");
  const kg::EntityId shorts = add(kg::EntityType::kItem, "BULLS_Shorts");
  const kg::EntityId jersey = add(kg::EntityType::kItem, "MJ_Jersey");
  const kg::EntityId socks = add(kg::EntityType::kItem, "Crew_Socks");
  const kg::EntityId brand = add(kg::EntityType::kBrand, "Air_Jordan");
  const kg::EntityId bulls = add(kg::EntityType::kFeature, "BULLS_Clothing");
  const kg::EntityId sports = add(kg::EntityType::kFeature, "Basketball");
  g.SetItemCategory(aj3, 0);
  g.SetItemCategory(aj4, 0);
  g.SetItemCategory(socks, 0);
  g.SetItemCategory(ball, 1);
  g.SetItemCategory(headband, 1);
  g.SetItemCategory(shorts, 2);
  g.SetItemCategory(jersey, 2);

  using R = kg::Relation;
  g.AddTriple(aj3, R::kProducedBy, brand);
  g.AddTriple(aj4, R::kProducedBy, brand);
  g.AddTriple(ball, R::kProducedBy, brand);
  g.AddTriple(headband, R::kProducedBy, brand);
  g.AddTriple(shorts, R::kDescribedBy, bulls);
  g.AddTriple(jersey, R::kDescribedBy, bulls);
  for (kg::EntityId item : {aj3, aj4, ball, headband, shorts, jersey}) {
    g.AddTriple(item, R::kDescribedBy, sports);
  }
  // The cross-category chain User2 must discover:
  // AJ_III -> AJ_Basketball -> MJ_Jersey (equipment bridges to apparel).
  g.AddTriple(aj3, R::kAlsoBought, ball);
  g.AddTriple(ball, R::kBoughtTogether, jersey);
  g.AddTriple(aj4, R::kAlsoViewed, headband);
  g.AddTriple(shorts, R::kBoughtTogether, jersey);
  g.AddTriple(aj3, R::kAlsoViewed, aj4);
  g.AddTriple(socks, R::kAlsoBought, aj3);
  // User1 is the "evidence" shopper who already bought across categories.
  auto purchase = [&](kg::EntityId u, kg::EntityId v, bool train) {
    const int64_t idx = static_cast<int64_t>(u);
    (void)idx;
    if (train) g.AddTriple(u, R::kPurchase, v);
  };
  w.dataset.users = {user1, user2, user3};
  w.dataset.train_items.resize(3);
  w.dataset.test_items.resize(3);
  auto record = [&](size_t pos, kg::EntityId u, kg::EntityId v, bool train) {
    purchase(u, v, train);
    if (train) {
      w.dataset.train_items[pos].push_back(v);
    } else {
      w.dataset.test_items[pos].push_back(v);
    }
  };
  record(0, user1, aj3, true);
  record(0, user1, ball, true);
  record(0, user1, jersey, true);
  record(0, user1, shorts, false);
  record(1, user2, aj3, true);
  record(1, user2, aj4, true);
  record(1, user2, jersey, false);  // the target: 5 hops away
  record(2, user3, shorts, true);
  record(2, user3, headband, true);
  record(2, user3, socks, false);
  g.Finalize();
  w.dataset.category_graph = kg::CategoryGraph::Build(g);
  w.dataset.name = "fig1-fragment";
  w.user2 = user2;
  w.jersey = jersey;
  return w;
}

std::string Render(const World& w, const eval::RecommendationPath& path) {
  std::string out = w.names.at(path.user);
  for (const eval::PathStep& step : path.steps) {
    out += " --" + kg::RelationName(step.relation) + "--> " +
           w.names.at(step.entity);
  }
  return out;
}

}  // namespace

int main() {
  World w = BuildWorld();
  std::cout << "Knowledge graph: " << w.dataset.graph.num_entities()
            << " entities, " << w.dataset.graph.num_triples()
            << " triples, 3 categories (shoes / equipment / apparel)\n";
  std::cout << "Goal: recommend " << w.names.at(w.jersey)
            << " to " << w.names.at(w.user2)
            << " — reachable only via a cross-category chain.\n\n";

  core::CadrlOptions options;
  options.transe.dim = 12;
  options.transe.epochs = 30;
  options.cggnn.epochs = 10;
  options.cggnn.pairs_per_epoch = 32;
  options.episodes_per_user = 40;
  options.max_path_length = 5;
  options.beam_width = 8;
  options.seed = 3;
  options.rank_category_weight = 1.5f;  // lean on the milestone guidance
  cadrl::core::CadrlRecommender cadrl_model(options);
  CADRL_CHECK_OK(cadrl_model.Fit(w.dataset));

  std::cout << "CADRL recommendations for " << w.names.at(w.user2) << ":\n";
  for (const auto& rec : cadrl_model.Recommend(w.user2, 5)) {
    std::cout << "  " << w.names.at(rec.item)
              << (rec.item == w.jersey ? "   <-- the held-out target" : "")
              << "\n    path: " << Render(w, rec.path) << "\n";
  }

  cadrl::baselines::RlBudget budget;
  budget.dim = 12;
  budget.transe_epochs = 30;
  budget.episodes_per_user = 40;
  auto pgpr = cadrl::baselines::MakePgpr(budget);
  CADRL_CHECK_OK(pgpr->Fit(w.dataset));
  std::cout << "\nPGPR (3-hop, single agent) for " << w.names.at(w.user2)
            << ":\n";
  for (const auto& rec : pgpr->Recommend(w.user2, 5)) {
    std::cout << "  " << w.names.at(rec.item)
              << (rec.item == w.jersey ? "   <-- the held-out target" : "")
              << "\n    path: " << Render(w, rec.path) << "\n";
  }
  return 0;
}
