// Tour of the data substrate: generates the three paper-shaped presets,
// prints their statistics and category-graph structure, and demonstrates
// dataset serialization round-trips.
//
//   ./build/examples/dataset_tour [output_dir]

#include <iostream>
#include <string>

#include "data/generator.h"
#include "data/serialize.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cadrl;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  TablePrinter table("Synthetic dataset presets");
  table.SetHeader({"Dataset", "Users", "Items", "Entities", "Interactions",
                   "Triples", "Categories", "Items/Cat", "CatEdges"});
  for (const auto& config :
       {data::SyntheticConfig::BeautySim(),
        data::SyntheticConfig::CellPhonesSim(),
        data::SyntheticConfig::ClothingSim()}) {
    data::Dataset dataset = data::MustGenerateDataset(config);
    const data::DatasetStats stats = ComputeStats(dataset);
    table.AddRow({stats.name, std::to_string(stats.num_users),
                  std::to_string(stats.num_items),
                  std::to_string(stats.num_entities),
                  std::to_string(stats.num_interactions),
                  std::to_string(stats.num_triples),
                  std::to_string(stats.num_categories),
                  TablePrinter::Fmt(stats.items_per_category, 1),
                  std::to_string(dataset.category_graph.num_edges())});
  }
  table.Print(std::cout);

  // Category neighborhoods: the structure the category agent walks.
  data::Dataset beauty =
      data::MustGenerateDataset(data::SyntheticConfig::BeautySim());
  std::cout << "\nCategory graph of " << beauty.name
            << " (strongest co-occurrence links):\n";
  for (kg::CategoryId c = 0; c < std::min<int64_t>(
                                     4, beauty.category_graph.num_categories());
       ++c) {
    std::cout << "  cat" << c << " ->";
    int shown = 0;
    for (const kg::CategoryEdge& e : beauty.category_graph.Neighbors(c)) {
      if (shown++ >= 3) break;
      std::cout << " cat" << e.dst << "(w=" << e.weight << ")";
    }
    std::cout << "\n";
  }

  // Serialization round-trip.
  const std::string path = out_dir + "/beauty_sim.cadrl.txt";
  Status status = data::SaveDataset(beauty, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  data::Dataset reloaded;
  status = data::LoadDataset(path, &reloaded);
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "\nSerialized to " << path << " and reloaded: "
            << reloaded.graph.num_triples() << " triples, "
            << reloaded.NumInteractions() << " interactions (matches: "
            << (reloaded.graph.num_triples() == beauty.graph.num_triples()
                    ? "yes"
                    : "NO")
            << ")\n";
  return 0;
}
