#ifndef CADRL_BENCH_BENCH_COMMON_H_
#define CADRL_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cafe.h"
#include "bench_json.h"
#include "baselines/cke.h"
#include "baselines/deepconn.h"
#include "baselines/heteroembed.h"
#include "baselines/kgat.h"
#include "baselines/ripplenet.h"
#include "baselines/rl_baselines.h"
#include "baselines/rulerec.h"
#include "core/cadrl.h"
#include "data/generator.h"
#include "eval/evaluator.h"
#include "util/table.h"

namespace cadrl {
namespace bench {

// One training/evaluation budget shared by every bench binary so tables are
// comparable. CADRL_BENCH_FAST=1 in the environment shrinks everything for
// smoke runs; CADRL_THREADS=N sets the worker-thread count used for
// training and parallel evaluation/serving (0 = one per hardware thread).
// Threads never change results — only wall-clock.
struct BenchConfig {
  baselines::RlBudget budget;
  embed::TransEOptions transe;
  int eval_users = 0;  // 0 = every user
  int threads = 1;

  static BenchConfig FromEnv() {
    BenchConfig c;
    c.budget.dim = 24;
    c.budget.transe_epochs = 8;
    c.budget.cggnn_epochs = 20;
    c.budget.episodes_per_user = 6;
    c.budget.beam_width = 16;
    c.budget.policy_hidden = 48;
    c.transe.dim = 24;
    c.transe.epochs = 8;
    const char* fast = std::getenv("CADRL_BENCH_FAST");
    if (fast != nullptr && std::string(fast) == "1") {
      c.budget.transe_epochs = 3;
      c.budget.cggnn_epochs = 2;
      c.budget.episodes_per_user = 1;
      c.budget.beam_width = 8;
      c.transe.epochs = 3;
      c.eval_users = 20;
    }
    const char* threads = std::getenv("CADRL_THREADS");
    if (threads != nullptr && *threads != '\0') {
      c.threads = std::atoi(threads);
      if (c.threads < 0) c.threads = 1;
      c.budget.threads = c.threads;
      c.transe.threads = c.threads;
    }
    return c;
  }
};

inline data::Dataset MakeDatasetByName(const std::string& name) {
  if (name == "Clothing") {
    return data::MustGenerateDataset(data::SyntheticConfig::ClothingSim());
  }
  if (name == "Cell_Phones") {
    return data::MustGenerateDataset(data::SyntheticConfig::CellPhonesSim());
  }
  return data::MustGenerateDataset(data::SyntheticConfig::BeautySim());
}

inline const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> kNames = {"Clothing", "Cell_Phones",
                                                  "Beauty"};
  return kNames;
}

// A lazily constructed model entry of the Table I zoo.
struct ModelEntry {
  std::string name;
  std::function<std::unique_ptr<eval::Recommender>()> make;
};

// The 14 models of Table I in the paper's row order, configured for
// `dataset_name` where the paper uses per-dataset hyper-parameters.
inline std::vector<ModelEntry> Table1Models(const BenchConfig& config,
                                            const std::string& dataset_name) {
  using namespace baselines;  // NOLINT(build/namespaces): bench-local
  const RlBudget budget = config.budget;
  const embed::TransEOptions transe = config.transe;
  std::vector<ModelEntry> zoo;
  zoo.push_back({"CKE", [transe] {
                   CkeOptions o;
                   o.transe = transe;
                   return std::make_unique<CkeRecommender>(o);
                 }});
  zoo.push_back({"KGAT", [transe] {
                   KgatOptions o;
                   o.transe = transe;
                   return std::make_unique<KgatRecommender>(o);
                 }});
  zoo.push_back({"DeepCoNN", [] {
                   return std::make_unique<DeepConnRecommender>();
                 }});
  zoo.push_back({"RippleNet", [transe] {
                   RippleNetOptions o;
                   o.transe = transe;
                   return std::make_unique<RippleNetRecommender>(o);
                 }});
  zoo.push_back({"RuleRec", [] {
                   return std::make_unique<RuleRecRecommender>();
                 }});
  zoo.push_back({"HeteroEmbed", [transe] {
                   HeteroEmbedOptions o;
                   o.transe = transe;
                   return std::make_unique<HeteroEmbedRecommender>(o);
                 }});
  zoo.push_back({"PGPR", [budget] { return MakePgpr(budget); }});
  zoo.push_back({"ReMR", [budget] { return MakeRemr(budget); }});
  zoo.push_back({"ADAC", [budget] { return MakeAdac(budget); }});
  zoo.push_back({"INFER", [budget] { return MakeInfer(budget); }});
  zoo.push_back({"CogER", [budget] { return MakeCoger(budget); }});
  zoo.push_back({"CAFE", [transe] {
                   CafeOptions o;
                   o.transe = transe;
                   return std::make_unique<CafeRecommender>(o);
                 }});
  zoo.push_back({"UCPR", [budget] { return MakeUcpr(budget); }});
  zoo.push_back({"CADRL", [budget, dataset_name] {
                   return MakeCadrlForDataset(budget, dataset_name);
                 }});
  return zoo;
}

inline std::string Pct(double v) { return TablePrinter::Fmt(v, 3); }

// Serving-arena footprint of `model`'s published snapshot, per section,
// into the bench JSON under "<key>/..." (zeros for models without a
// compiled arena). Every bench binary dumps this for its fitted CADRL
// model so the memory claims of DESIGN.md §14 stay measured numbers that
// scripts can diff across commits alongside the timing metrics.
inline void DumpServingArena(BenchJson& json, const eval::Recommender& model,
                             const std::string& key) {
  const eval::Recommender::ServingArena arena = model.ServingArenaBytes();
  json.Set(key + "/store_row_bytes", static_cast<double>(arena.store_row_bytes));
  json.Set(key + "/store_scale_bytes",
           static_cast<double>(arena.store_scale_bytes));
  json.Set(key + "/policy_param_bytes",
           static_cast<double>(arena.policy_param_bytes));
  json.Set(key + "/total_bytes", static_cast<double>(arena.total()));
}

}  // namespace bench
}  // namespace cadrl

#endif  // CADRL_BENCH_BENCH_COMMON_H_
