// Reproduces Fig. 6: sensitivity of CADRL's NDCG to the key
// hyper-parameters — (a) the trade-off factor delta of Eq 11, (b) the
// reward discount factor alpha_pe of Eq 20, (c) alpha_pc of Eq 21 — on all
// three datasets.

#include <iostream>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

void RunSweep(BenchJson& json, const std::string& prefix,
              const BenchConfig& config, const std::string& title,
              const std::vector<float>& values,
              const std::function<void(core::CadrlOptions*, float)>& apply) {
  TablePrinter table(title);
  std::vector<std::string> header = {"Dataset"};
  for (float v : values) header.push_back(TablePrinter::Fmt(v, 1));
  table.SetHeader(header);
  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    std::vector<std::string> row = {dataset_name};
    for (float v : values) {
      auto base = baselines::MakeCadrlForDataset(config.budget, dataset_name);
      core::CadrlOptions options = base->options();
      apply(&options, v);
      core::CadrlRecommender model(options, "CADRL");
      if (!model.Fit(dataset).ok()) {
        row.push_back("-");
        continue;
      }
      const eval::EvalResult r = eval::EvaluateRecommender(&model, dataset, 10, 100);
      // Same key per sweep value (the arena does not depend on the swept
      // hyper-parameter); the JSON map keeps the last write.
      DumpServingArena(json, model,
                       prefix + BenchJson::Slug(dataset_name) + "/arena");
      row.push_back(Pct(r.ndcg));
      std::cerr << title << " " << dataset_name << " v="
                << TablePrinter::Fmt(v, 1) << ": " << Pct(r.ndcg)
                << std::endl;
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  json.AddTable(table, prefix);
  std::cout << std::endl;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  config.budget.episodes_per_user = std::max(1, config.budget.episodes_per_user - 3);
  const std::vector<float> grid = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  BenchJson json("fig6");
  RunSweep(json, "delta/", config,
           "Fig 6(a): NDCG (%) vs trade-off factor delta", grid,
           [](core::CadrlOptions* o, float v) { o->cggnn.delta = v; });
  RunSweep(json, "alpha_pe/", config,
           "Fig 6(b): NDCG (%) vs reward discount factor alpha_pe", grid, [](core::CadrlOptions* o, float v) { o->alpha_pe = v; });
  RunSweep(json, "alpha_pc/", config,
           "Fig 6(c): NDCG (%) vs reward discount factor alpha_pc", grid, [](core::CadrlOptions* o, float v) { o->alpha_pc = v; });
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
