// Reproduces Table I: recommendation accuracy (NDCG / Recall / HR /
// Precision @10, reported as percentages) of all 13 baselines and CADRL on
// the three synthetic Amazon-like datasets, plus the "Improv." row of CADRL
// over the strongest baseline.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "bench_json.h"
#include "util/stopwatch.h"

namespace cadrl {
namespace bench {
namespace {

void Run() {
  BenchJson json("table1");
  const BenchConfig config = BenchConfig::FromEnv();
  std::map<std::string, std::map<std::string, eval::EvalResult>> results;

  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    std::cerr << "== dataset " << dataset_name << " ==" << std::endl;
    for (const ModelEntry& entry : Table1Models(config, dataset_name)) {
      Stopwatch sw;
      auto model = entry.make();
      const Status status = model->Fit(dataset);
      if (!status.ok()) {
        std::cerr << entry.name << ": fit failed: " << status.ToString()
                  << std::endl;
        continue;
      }
      eval::EvalResult result = eval::EvaluateRecommender(
          model.get(), dataset, 10, config.eval_users);
      results[dataset_name][entry.name] = result;
      if (entry.name == "CADRL") {
        DumpServingArena(json, *model,
                         "arena/" + BenchJson::Slug(dataset_name));
      }
      std::cerr << "  " << entry.name << ": NDCG=" << Pct(result.ndcg)
                << " (" << TablePrinter::Fmt(sw.ElapsedSeconds(), 1) << "s)"
                << std::endl;
    }
  }

  TablePrinter table(
      "Table I: Comparison of recommendation accuracy (all values %)");
  std::vector<std::string> header = {"Model"};
  for (const std::string& d : DatasetNames()) {
    header.push_back(d + " NDCG");
    header.push_back(d + " Recall");
    header.push_back(d + " HR");
    header.push_back(d + " Prec.");
  }
  table.SetHeader(header);
  const auto model_names = Table1Models(config, "Beauty");
  std::map<std::string, double> best_baseline_ndcg;
  for (const ModelEntry& entry : model_names) {
    std::vector<std::string> row = {entry.name};
    for (const std::string& d : DatasetNames()) {
      const auto it = results[d].find(entry.name);
      if (it == results[d].end()) {
        row.insert(row.end(), {"-", "-", "-", "-"});
        continue;
      }
      const eval::EvalResult& r = it->second;
      row.push_back(Pct(r.ndcg));
      row.push_back(Pct(r.recall));
      row.push_back(Pct(r.hit_rate));
      row.push_back(Pct(r.precision));
      if (entry.name != "CADRL") {
        best_baseline_ndcg[d] = std::max(best_baseline_ndcg[d], r.ndcg);
      }
    }
    table.AddRow(row);
  }
  // Improv. row: CADRL vs best baseline, per dataset (NDCG-based, mirroring
  // the paper's per-metric improvements with the headline metric).
  std::vector<std::string> improv = {"Improv."};
  for (const std::string& d : DatasetNames()) {
    const auto it = results[d].find("CADRL");
    if (it == results[d].end() || best_baseline_ndcg[d] <= 0.0) {
      improv.insert(improv.end(), {"-", "-", "-", "-"});
      continue;
    }
    const double gain =
        (it->second.ndcg - best_baseline_ndcg[d]) / best_baseline_ndcg[d];
    improv.push_back(TablePrinter::Fmt(gain * 100.0, 2) + "%");
    improv.insert(improv.end(), {"", "", ""});
  }
  table.AddRow(improv);
  table.Print(std::cout);
  json.AddTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
