// Reproduces Table II: statistics of the experimental datasets (users,
// items, entities, interactions, triples) for the three synthetic presets,
// plus the items-per-category densities quoted in §V-C.

#include <iostream>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

void Run() {
  BenchJson json("table2");
  TablePrinter table("Table II: Statistics of the experimental datasets");
  table.SetHeader({"Dataset", "#Users", "#Items", "#Entities",
                   "#Interactions", "#Triplets", "#Categories",
                   "Items/Category"});
  for (const std::string& name : {"Beauty", "Cell_Phones", "Clothing"}) {
    data::Dataset dataset = MakeDatasetByName(name);
    const data::DatasetStats stats = ComputeStats(dataset);
    table.AddRow({stats.name, std::to_string(stats.num_users),
                  std::to_string(stats.num_items),
                  std::to_string(stats.num_entities),
                  std::to_string(stats.num_interactions),
                  std::to_string(stats.num_triples),
                  std::to_string(stats.num_categories),
                  TablePrinter::Fmt(stats.items_per_category, 2)});
  }
  table.Print(std::cout);
  json.AddTable(table, "stats/");
  std::cout << "\nCategory-graph shape (Definition 4):\n";
  TablePrinter cg("");
  cg.SetHeader({"Dataset", "#CategoryEdges", "MeanDegree"});
  for (const std::string& name : {"Beauty", "Cell_Phones", "Clothing"}) {
    data::Dataset dataset = MakeDatasetByName(name);
    const auto& g = dataset.category_graph;
    cg.AddRow({name, std::to_string(g.num_edges()),
               TablePrinter::Fmt(
                   static_cast<double>(g.num_edges()) /
                       std::max<int64_t>(1, g.num_categories()),
                   2)});
  }
  cg.Print(std::cout);
  json.AddTable(cg, "catgraph/");
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
