// Reproduces Fig. 4: effectiveness of the DARL modules. Compares RSHI
// (shared history removed) and RCRM (collaborative partner rewards
// removed) against UCPR and full CADRL on Beauty and Cell Phones.

#include <iostream>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  struct Variant {
    std::string name;
    std::function<std::unique_ptr<eval::Recommender>(const std::string&)>
        make;
  };
  const std::vector<Variant> variants = {
      {"UCPR",
       [&](const std::string&) -> std::unique_ptr<eval::Recommender> {
         return baselines::MakeUcpr(config.budget);
       }},
      {"RSHI",
       [&](const std::string&) -> std::unique_ptr<eval::Recommender> {
         return baselines::MakeRshi(config.budget);
       }},
      {"RCRM",
       [&](const std::string&) -> std::unique_ptr<eval::Recommender> {
         return baselines::MakeRcrm(config.budget);
       }},
      {"CADRL",
       [&](const std::string& d) -> std::unique_ptr<eval::Recommender> {
         return baselines::MakeCadrlForDataset(config.budget, d);
       }},
  };

  BenchJson json("fig4");
  for (const std::string& dataset_name : {"Beauty", "Cell_Phones"}) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    TablePrinter table("Fig 4 (" + dataset_name +
                       "): DARL module ablation (all %)");
    table.SetHeader({"Model", "NDCG", "Recall", "HR", "Prec."});
    for (const Variant& v : variants) {
      auto model = v.make(dataset_name);
      if (!model->Fit(dataset).ok()) {
        table.AddRow({v.name, "-", "-", "-", "-"});
        continue;
      }
      const eval::EvalResult r = eval::EvaluateRecommender(
          model.get(), dataset, 10, config.eval_users);
      if (v.name == "CADRL") {
        DumpServingArena(json, *model,
                         BenchJson::Slug(dataset_name) + "/arena");
      }
      table.AddRow({v.name, Pct(r.ndcg), Pct(r.recall), Pct(r.hit_rate),
                    Pct(r.precision)});
      std::cerr << dataset_name << " / " << v.name << " done" << std::endl;
    }
    table.Print(std::cout);
    json.AddTable(table, BenchJson::Slug(dataset_name) + "/");
    std::cout << std::endl;
  }
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
