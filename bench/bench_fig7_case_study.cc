// Reproduces Fig. 7: the explainability case study on Beauty. Trains CADRL
// and a 3-hop PGPR, picks users whose recommendations CADRL reaches via
// long (>3 hop) paths, and prints both the entity-level path and the
// category lane above it, PGPR's short path for contrast, and whether each
// recommendation hits the user's held-out test set.

#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "bench_json.h"
#include "eval/path_metrics.h"

namespace cadrl {
namespace bench {
namespace {

std::string CategoryLane(const data::Dataset& dataset,
                         const eval::RecommendationPath& path) {
  std::string lane = "[user]";
  for (const eval::PathStep& step : path.steps) {
    lane += " -> ";
    const kg::CategoryId c = dataset.graph.CategoryOf(step.entity);
    lane += c == kg::kInvalidCategory
                ? "(" + kg::EntityTypeName(dataset.graph.TypeOf(step.entity)) +
                      ")"
                : "cat" + std::to_string(c);
  }
  return lane;
}

void Run() {
  BenchJson json("fig7");
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto cadrl_model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(cadrl_model->Fit(dataset));
  DumpServingArena(json, *cadrl_model, "arena");
  auto pgpr = baselines::MakePgpr(config.budget);
  CADRL_CHECK_OK(pgpr->Fit(dataset));

  std::cout << "Fig 7: Case study on Beauty — explainable recommendation "
               "paths\n\n";
  int shown = 0;
  for (size_t u = 0; u < dataset.users.size() && shown < 3; ++u) {
    const kg::EntityId user = dataset.users[u];
    const std::set<kg::EntityId> test(dataset.test_items[u].begin(),
                                      dataset.test_items[u].end());
    auto recs = cadrl_model->Recommend(user, 10);
    // Prefer a user whose list contains a long-path hit.
    const eval::Recommendation* pick = nullptr;
    for (const auto& rec : recs) {
      if (rec.path.steps.size() > 3 && test.count(rec.item) > 0) {
        pick = &rec;
        break;
      }
    }
    if (pick == nullptr) {
      for (const auto& rec : recs) {
        if (rec.path.steps.size() > 3) {
          pick = &rec;
          break;
        }
      }
    }
    if (pick == nullptr) continue;
    ++shown;
    std::cout << "User " << user << " (prefers categories:";
    std::set<kg::CategoryId> cats;
    for (kg::EntityId item : dataset.train_items[u]) {
      cats.insert(dataset.graph.CategoryOf(item));
    }
    for (kg::CategoryId c : cats) std::cout << " cat" << c;
    std::cout << ")\n";
    std::cout << "  CADRL category lane: " << CategoryLane(dataset, pick->path)
              << "\n";
    std::cout << "  CADRL path (" << pick->path.steps.size()
              << " hops): " << eval::FormatPath(dataset.graph, pick->path)
              << "\n";
    std::cout << "  -> recommends item#" << pick->item << " ["
              << (test.count(pick->item) > 0 ? "HIT: in held-out test set"
                                             : "miss")
              << "]\n";
    auto pgpr_recs = pgpr->Recommend(user, 10);
    if (!pgpr_recs.empty() && !pgpr_recs[0].path.empty()) {
      std::cout << "  PGPR (3-hop) path:  "
                << eval::FormatPath(dataset.graph, pgpr_recs[0].path) << " ["
                << (test.count(pgpr_recs[0].item) > 0 ? "HIT" : "miss")
                << "]\n";
    }
    std::cout << std::endl;
  }
  if (shown == 0) {
    std::cout << "(no long-path recommendations surfaced with this budget; "
                 "rerun without CADRL_BENCH_FAST)\n";
  }

  // Path-length histogram + path-quality metrics: the quantitative side of
  // the case study, for CADRL and the 3-hop PGPR contrast.
  TablePrinter hist("CADRL explanation path lengths over 40 users");
  hist.SetHeader({"Hops", "Count"});
  std::map<size_t, int> counts;
  std::vector<eval::RecommendationPath> cadrl_paths, pgpr_paths;
  for (size_t u = 0; u < dataset.users.size() && u < 40; ++u) {
    for (auto& rec : cadrl_model->Recommend(dataset.users[u], 10)) {
      ++counts[rec.path.steps.size()];
      cadrl_paths.push_back(std::move(rec.path));
    }
    for (auto& rec : pgpr->Recommend(dataset.users[u], 10)) {
      pgpr_paths.push_back(std::move(rec.path));
    }
  }
  for (const auto& [hops, count] : counts) {
    hist.AddRow({std::to_string(hops), std::to_string(count)});
  }
  hist.Print(std::cout);
  json.AddTable(hist, "hops/");

  TablePrinter quality("Explanation path quality (RQ7)");
  quality.SetHeader({"Model", "Paths", "Valid%", "MeanLen", ">3 hops %",
                     "RelDiversity", "Cats/Path"});
  for (const auto& [name, paths] :
       {std::pair<std::string, const std::vector<eval::RecommendationPath>*>(
            "CADRL", &cadrl_paths),
        {"PGPR", &pgpr_paths}}) {
    const eval::PathQuality q = eval::EvaluatePaths(dataset.graph, *paths);
    quality.AddRow(
        {name, std::to_string(q.num_paths),
         TablePrinter::Fmt(q.num_paths > 0 ? 100.0 * q.num_valid / q.num_paths
                                           : 0.0,
                           1),
         TablePrinter::Fmt(q.mean_length, 2),
         TablePrinter::Fmt(100.0 * q.long_path_fraction, 1),
         TablePrinter::Fmt(q.relation_diversity, 2),
         TablePrinter::Fmt(q.mean_categories_per_path, 2)});
  }
  quality.Print(std::cout);
  json.AddTable(quality, "quality/");
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
