// Microbenchmarks of the quantized kernel layer (DESIGN.md §14): each
// fused int8 / f16 kernel against its f32 counterpart at the serving
// shapes (dim 24 from BenchConfig, plus a wider dim to show the trend),
// over row counts spanning the cache-block edges. The quantized kernels
// dequantize on the accumulate — same 8-lane reduction order, 4x (int8)
// or 2x (f16) fewer row bytes — so the interesting number is throughput
// per gathered row, not FLOPs. A BenchJson ("quantized_kernels") records
// rows/s per kernel alongside the encoded bytes per row so the perf
// trajectory is diffable across commits.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "util/kernels.h"

namespace cadrl {
namespace bench {
namespace {

// One quantized table: `rows` x `d` f32 values encoded once (as
// CompiledModel::Build does), reused by every iteration.
struct QuantTable {
  int rows = 0;
  int d = 0;
  std::vector<float> f32;
  std::vector<uint16_t> f16;
  std::vector<int8_t> q8;
  std::vector<float> scales, zps;  // decoded, as the scoring views hold them

  QuantTable(int rows_in, int d_in, uint32_t seed) : rows(rows_in), d(d_in) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    f32.resize(static_cast<size_t>(rows) * d);
    for (float& v : f32) v = dist(rng);
    f16.resize(f32.size());
    kernels::QuantizeRowF16(f32.data(), static_cast<int>(f32.size()),
                            f16.data());
    q8.resize(f32.size());
    scales.resize(static_cast<size_t>(rows));
    zps.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      uint16_t scale_bits = 0, zp_bits = 0;
      kernels::QuantizeRowQ8(f32.data() + static_cast<size_t>(r) * d, d,
                             q8.data() + static_cast<size_t>(r) * d,
                             &scale_bits, &zp_bits);
      scales[static_cast<size_t>(r)] = kernels::F16ToF32(scale_bits);
      zps[static_cast<size_t>(r)] = kernels::F16ToF32(zp_bits);
    }
  }
};

const QuantTable& TableFor(const benchmark::State& state) {
  // Keyed by (rows, d); benchmarks share tables so setup cost is paid once.
  static std::vector<QuantTable>* tables = new std::vector<QuantTable>();
  const int rows = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  for (const QuantTable& t : *tables) {
    if (t.rows == rows && t.d == d) return t;
  }
  tables->emplace_back(rows, d, /*seed=*/0x51u + static_cast<uint32_t>(d));
  return tables->back();
}

void RecordRowRate(benchmark::State& state, const std::string& kernel,
                   double bytes_per_row) {
  const double rows_per_iter = static_cast<double>(state.range(0));
  state.counters["rows/s"] = benchmark::Counter(
      rows_per_iter, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["B/row"] = benchmark::Counter(bytes_per_row);
  (void)kernel;
}

// ---------- NegSqDistRows: the beam-search scoring hot loop ----------

void BM_NegSqDistRowsF32(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> u(static_cast<size_t>(t.d), 0.3f);
  std::vector<float> r(static_cast<size_t>(t.d), -0.1f);
  std::vector<float> out(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::NegSqDistRows(t.f32.data(), t.rows, t.d, u.data(), r.data(),
                           out.data());
    benchmark::DoNotOptimize(out.data());
  }
  RecordRowRate(state, "negsqdist_f32", 4.0 * t.d);
}

void BM_NegSqDistRowsF16(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> u(static_cast<size_t>(t.d), 0.3f);
  std::vector<float> r(static_cast<size_t>(t.d), -0.1f);
  std::vector<float> out(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::NegSqDistRowsF16(t.f16.data(), t.rows, t.d, u.data(), r.data(),
                              out.data());
    benchmark::DoNotOptimize(out.data());
  }
  RecordRowRate(state, "negsqdist_f16", 2.0 * t.d);
}

void BM_NegSqDistRowsQ8(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> u(static_cast<size_t>(t.d), 0.3f);
  std::vector<float> r(static_cast<size_t>(t.d), -0.1f);
  std::vector<float> out(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::NegSqDistRowsQ8(t.q8.data(), t.scales.data(), t.zps.data(),
                             t.rows, t.d, u.data(), r.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  RecordRowRate(state, "negsqdist_q8", 1.0 * t.d + 4.0);
}

// ---------- Gemv over encoded rows: batched action scoring ----------

void BM_GemvF32(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> x(static_cast<size_t>(t.d), 0.7f);
  std::vector<float> y(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::Gemv(t.f32.data(), t.rows, t.d, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  RecordRowRate(state, "gemv_f32", 4.0 * t.d);
}

void BM_GemvF16(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> x(static_cast<size_t>(t.d), 0.7f);
  std::vector<float> y(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::GemvF16(t.f16.data(), t.rows, t.d, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  RecordRowRate(state, "gemv_f16", 2.0 * t.d);
}

void BM_GemvQ8(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> x(static_cast<size_t>(t.d), 0.7f);
  std::vector<float> y(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    kernels::GemvQ8(t.q8.data(), t.scales.data(), t.zps.data(), t.rows, t.d,
                    x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  RecordRowRate(state, "gemv_q8", 1.0 * t.d + 4.0);
}

// ---------- GemmNT against an encoded right-hand side ----------

constexpr int kGemmM = 16;  // stacked features (micro-batched beam steps)

void BM_GemmNTF32(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> a(static_cast<size_t>(kGemmM) * t.d, 0.2f);
  std::vector<float> c(static_cast<size_t>(kGemmM) * t.rows);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmNTAcc(a.data(), t.f32.data(), c.data(), kGemmM, t.rows,
                       t.d);
    benchmark::DoNotOptimize(c.data());
  }
  RecordRowRate(state, "gemmnt_f32", 4.0 * t.d);
}

void BM_GemmNTF16(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> a(static_cast<size_t>(kGemmM) * t.d, 0.2f);
  std::vector<float> c(static_cast<size_t>(kGemmM) * t.rows);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmNTF16Acc(a.data(), t.f16.data(), c.data(), kGemmM, t.rows,
                          t.d);
    benchmark::DoNotOptimize(c.data());
  }
  RecordRowRate(state, "gemmnt_f16", 2.0 * t.d);
}

void BM_GemmNTQ8(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> a(static_cast<size_t>(kGemmM) * t.d, 0.2f);
  std::vector<float> c(static_cast<size_t>(kGemmM) * t.rows);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmNTQ8Acc(a.data(), t.q8.data(), t.scales.data(),
                         t.zps.data(), c.data(), kGemmM, t.rows, t.d);
    benchmark::DoNotOptimize(c.data());
  }
  RecordRowRate(state, "gemmnt_q8", 1.0 * t.d + 4.0);
}

// ---------- encode/decode ----------

void BM_QuantizeRowQ8(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<int8_t> q(static_cast<size_t>(t.rows) * t.d);
  std::vector<uint16_t> scales(static_cast<size_t>(t.rows));
  std::vector<uint16_t> zps(static_cast<size_t>(t.rows));
  for (auto _ : state) {
    for (int r = 0; r < t.rows; ++r) {
      kernels::QuantizeRowQ8(t.f32.data() + static_cast<size_t>(r) * t.d,
                             t.d, q.data() + static_cast<size_t>(r) * t.d,
                             &scales[static_cast<size_t>(r)],
                             &zps[static_cast<size_t>(r)]);
    }
    benchmark::DoNotOptimize(q.data());
  }
  RecordRowRate(state, "quantize_q8", 1.0 * t.d + 4.0);
}

void BM_DequantizeRowQ8(benchmark::State& state) {
  const QuantTable& t = TableFor(state);
  std::vector<float> out(static_cast<size_t>(t.d));
  int64_t cursor = 0;
  for (auto _ : state) {
    const int r = static_cast<int>(cursor++ % t.rows);
    kernels::DequantizeRowQ8(t.q8.data() + static_cast<size_t>(r) * t.d,
                             t.scales[static_cast<size_t>(r)],
                             t.zps[static_cast<size_t>(r)], t.d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows/s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}

// Row counts straddle the m-block edge (kBlockM = 32) and the dims cover
// the serving configuration (24) and a wider table (64).
void QuantShapes(benchmark::internal::Benchmark* b) {
  for (const int rows : {31, 32, 33, 1024}) {
    for (const int d : {24, 64}) {
      b->Args({rows, d});
    }
  }
}

BENCHMARK(BM_NegSqDistRowsF32)->Apply(QuantShapes);
BENCHMARK(BM_NegSqDistRowsF16)->Apply(QuantShapes);
BENCHMARK(BM_NegSqDistRowsQ8)->Apply(QuantShapes);
BENCHMARK(BM_GemvF32)->Apply(QuantShapes);
BENCHMARK(BM_GemvF16)->Apply(QuantShapes);
BENCHMARK(BM_GemvQ8)->Apply(QuantShapes);
BENCHMARK(BM_GemmNTF32)->Args({1024, 24})->Args({1024, 64});
BENCHMARK(BM_GemmNTF16)->Args({1024, 24})->Args({1024, 64});
BENCHMARK(BM_GemmNTQ8)->Args({1024, 24})->Args({1024, 64});
BENCHMARK(BM_QuantizeRowQ8)->Args({1024, 24});
BENCHMARK(BM_DequantizeRowQ8)->Args({1024, 24});

// ---------- JSON summary (manual timing, diffable across commits) ----------

template <typename Fn>
double MeasureRowsPerSec(int rows, Fn&& fn) {
  // Warm up, then time enough reps for ~10ms of work.
  for (int i = 0; i < 8; ++i) fn();
  int reps = 32;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const double s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (s >= 0.01 || reps >= (1 << 20)) {
      return static_cast<double>(rows) * reps / s;
    }
    reps *= 4;
  }
}

// rows/s for each precision of each fused kernel at the big-table shape,
// plus the int8:f32 and f16:f32 speedups — the numbers the "Quantized
// serving" docs quote.
void WriteJsonSummary(BenchJson& json) {
  constexpr int kRows = 1024;
  for (const int d : {24, 64}) {
    const QuantTable t(kRows, d, /*seed=*/0x51u + static_cast<uint32_t>(d));
    std::vector<float> u(static_cast<size_t>(d), 0.3f);
    std::vector<float> r(static_cast<size_t>(d), -0.1f);
    std::vector<float> x(static_cast<size_t>(d), 0.7f);
    std::vector<float> out(static_cast<size_t>(kRows));
    const std::string dkey = "d" + std::to_string(d);

    struct Variant {
      const char* name;
      double rows_per_s;
    };
    const Variant negsq[] = {
        {"f32", MeasureRowsPerSec(kRows, [&] {
           kernels::NegSqDistRows(t.f32.data(), kRows, d, u.data(), r.data(),
                                  out.data());
         })},
        {"f16", MeasureRowsPerSec(kRows, [&] {
           kernels::NegSqDistRowsF16(t.f16.data(), kRows, d, u.data(),
                                     r.data(), out.data());
         })},
        {"int8", MeasureRowsPerSec(kRows, [&] {
           kernels::NegSqDistRowsQ8(t.q8.data(), t.scales.data(),
                                    t.zps.data(), kRows, d, u.data(),
                                    r.data(), out.data());
         })},
    };
    const Variant gemv[] = {
        {"f32", MeasureRowsPerSec(kRows, [&] {
           kernels::Gemv(t.f32.data(), kRows, d, x.data(), out.data());
         })},
        {"f16", MeasureRowsPerSec(kRows, [&] {
           kernels::GemvF16(t.f16.data(), kRows, d, x.data(), out.data());
         })},
        {"int8", MeasureRowsPerSec(kRows, [&] {
           kernels::GemvQ8(t.q8.data(), t.scales.data(), t.zps.data(), kRows,
                           d, x.data(), out.data());
         })},
    };
    for (const auto& [kernel, variants] :
         {std::pair<const char*, const Variant*>{"negsqdist", negsq},
          std::pair<const char*, const Variant*>{"gemv", gemv}}) {
      for (int v = 0; v < 3; ++v) {
        json.Set(std::string(kernel) + "/" + dkey + "/" + variants[v].name +
                     "_rows_per_s",
                 variants[v].rows_per_s);
      }
      json.Set(std::string(kernel) + "/" + dkey + "/f16_speedup",
               variants[1].rows_per_s / variants[0].rows_per_s);
      json.Set(std::string(kernel) + "/" + dkey + "/int8_speedup",
               variants[2].rows_per_s / variants[0].rows_per_s);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main(int argc, char** argv) {
  cadrl::bench::BenchJson json("quantized_kernels");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cadrl::bench::WriteJsonSummary(json);
  return 0;
}
