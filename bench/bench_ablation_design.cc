// Ablation of the *reconstruction* decisions documented in DESIGN.md §3.0
// (not part of the paper): potential-based reward shaping, plausibility
// beam guidance, the milestone ranking bonus, and validation-driven score
// mode selection. Run on the Beauty preset, all users.

#include <iostream>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

void Run() {
  BenchJson json("ablation_design");
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");

  struct Variant {
    std::string name;
    std::function<void(core::CadrlOptions*)> apply;
  };
  const std::vector<Variant> variants = {
      {"CADRL (all design decisions)", [](core::CadrlOptions*) {}},
      {"- potential shaping",
       [](core::CadrlOptions* o) { o->potential_shaping = 0.0f; }},
      {"- beam guidance",
       [](core::CadrlOptions* o) { o->beam_guidance_weight = 0.0f; }},
      {"- milestone ranking bonus",
       [](core::CadrlOptions* o) { o->rank_category_weight = 0.0f; }},
      {"- path-probability prior",
       [](core::CadrlOptions* o) { o->rank_path_weight = 0.0f; }},
      {"- entropy regularization",
       [](core::CadrlOptions* o) { o->entropy_coef = 0.0f; }},
  };

  TablePrinter table(
      "Design-decision ablation on Beauty (reconstruction choices, "
      "DESIGN.md 3.0; all %)");
  table.SetHeader({"Variant", "NDCG", "Recall", "HR", "Prec."});
  for (const Variant& v : variants) {
    auto base = baselines::MakeCadrlForDataset(config.budget, "Beauty");
    core::CadrlOptions options = base->options();
    v.apply(&options);
    core::CadrlRecommender model(options, "CADRL");
    if (!model.Fit(dataset).ok()) {
      table.AddRow({v.name, "-", "-", "-", "-"});
      continue;
    }
    const eval::EvalResult r =
        eval::EvaluateRecommender(&model, dataset, 10, config.eval_users);
    DumpServingArena(json, model, "arena/" + BenchJson::Slug(v.name));
    table.AddRow({v.name, Pct(r.ndcg), Pct(r.recall), Pct(r.hit_rate),
                  Pct(r.precision)});
    std::cerr << v.name << ": " << Pct(r.ndcg) << std::endl;
  }
  table.Print(std::cout);
  json.AddTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
