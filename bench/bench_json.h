#ifndef CADRL_BENCH_BENCH_JSON_H_
#define CADRL_BENCH_BENCH_JSON_H_

// Machine-readable benchmark output. Every bench_* binary owns a BenchJson
// named after its table ("table3", "fig5", ...); when the environment
// variable CADRL_BENCH_JSON is set the collected metrics are written as
// BENCH_<name>.json (a flat {"metric": value} object) into the directory it
// names ("1" or an empty value mean the current directory). This gives the
// repo a perf trajectory that scripts can diff across commits without
// scraping the human-format tables.

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/table.h"

namespace cadrl {
namespace bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() {
    if (enabled() && !written_) {
      const Status status = Write();
      if (!status.ok()) {
        std::cerr << "BENCH_" << name_ << ".json: " << status.ToString()
                  << "\n";
      }
    }
  }

  static bool enabled() { return std::getenv("CADRL_BENCH_JSON") != nullptr; }

  void Set(const std::string& metric, double value) {
    metrics_[metric] = value;
  }

  // Ingests every numeric-leading cell of `table` as a metric named
  // "<prefix><header>/<first column of the row>" (slug-cased). Cells like
  // "0.123 +/- 0.045" record their leading number; non-numeric cells ("-")
  // are skipped.
  void AddTable(const TablePrinter& table, const std::string& prefix = "") {
    const auto& header = table.header();
    for (const auto& row : table.rows()) {
      if (row.empty()) continue;
      for (size_t c = 1; c < row.size() && c < header.size(); ++c) {
        double value = 0.0;
        if (!LeadingNumber(row[c], &value)) continue;
        Set(prefix + Slug(header[c]) + "/" + Slug(row[0]), value);
      }
    }
  }

  // Lowercases and maps everything but [a-z0-9._-] to '_' so metric names
  // stay shell- and JSON-pointer-friendly. Public so bench binaries can
  // slug dataset names into AddTable prefixes.
  static std::string Slug(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      const unsigned char u = static_cast<unsigned char>(ch);
      if (std::isalnum(u)) {
        out.push_back(static_cast<char>(std::tolower(u)));
      } else if (ch == '.' || ch == '-' || ch == '_') {
        out.push_back(ch);
      } else if (!out.empty() && out.back() != '_') {
        out.push_back('_');
      }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
  }

  // Writes BENCH_<name>.json into the CADRL_BENCH_JSON directory. Metrics
  // are emitted in sorted key order so the file diffs cleanly.
  Status Write() {
    written_ = true;
    std::string dir = std::getenv("CADRL_BENCH_JSON");
    if (dir == "1" || dir.empty()) dir = ".";
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.is_open()) {
      return Status::IOError("cannot open for writing: " + path);
    }
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "{\n";
    bool first = true;
    for (const auto& [metric, value] : metrics_) {
      if (!first) out << ",\n";
      first = false;
      out << "  \"" << metric << "\": " << value;
    }
    out << "\n}\n";
    if (!out.good()) return Status::IOError("write failed: " + path);
    std::cerr << "wrote " << path << " (" << metrics_.size() << " metrics)\n";
    return Status::OK();
  }

 private:
  static bool LeadingNumber(const std::string& cell, double* value) {
    const char* s = cell.c_str();
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s) return false;
    *value = v;
    return true;
  }

  std::string name_;
  std::map<std::string, double> metrics_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace cadrl

#endif  // CADRL_BENCH_BENCH_JSON_H_
