// Reproduces Fig. 5: NDCG as a function of the maximum recommendation step
// L (1..8) for the RL-based models (PGPR, UCPR, CADRL; CAFE's pattern
// length plays the analogous role) on all three datasets. Each point
// retrains the model with that horizon.

#include <iostream>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

core::CadrlOptions WithLength(core::CadrlOptions o, int length) {
  o.max_path_length = length;
  return o;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  // The sweep retrains (#models x #lengths x #datasets) models; use a
  // slightly smaller per-model budget than Table I.
  config.budget.episodes_per_user = std::max(1, config.budget.episodes_per_user - 4);
  const int eval_cap = 100;
  const std::vector<int> lengths = {1, 2, 3, 4, 5, 6, 7, 8};

  BenchJson json("fig5");
  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    TablePrinter table("Fig 5 (" + dataset_name +
                       "): NDCG (%) vs maximum path length L");
    std::vector<std::string> header = {"Model"};
    for (int l : lengths) header.push_back("L=" + std::to_string(l));
    table.SetHeader(header);

    struct Series {
      std::string name;
      std::function<std::unique_ptr<eval::Recommender>(int)> make;
    };
    const std::vector<Series> series = {
        {"PGPR",
         [&](int l) -> std::unique_ptr<eval::Recommender> {
           auto model = baselines::MakePgpr(config.budget);
           return std::make_unique<core::CadrlRecommender>(
               WithLength(model->options(), l), "PGPR");
         }},
        {"UCPR",
         [&](int l) -> std::unique_ptr<eval::Recommender> {
           auto model = baselines::MakeUcpr(config.budget);
           return std::make_unique<core::CadrlRecommender>(
               WithLength(model->options(), l), "UCPR");
         }},
        {"CAFE",
         [&](int l) -> std::unique_ptr<eval::Recommender> {
           baselines::CafeOptions o;
           o.transe = config.transe;
           o.max_pattern_length = l;
           return std::make_unique<baselines::CafeRecommender>(o);
         }},
        {"CADRL",
         [&](int l) -> std::unique_ptr<eval::Recommender> {
           auto model =
               baselines::MakeCadrlForDataset(config.budget, dataset_name);
           return std::make_unique<core::CadrlRecommender>(
               WithLength(model->options(), l), "CADRL");
         }},
    };

    for (const Series& s : series) {
      std::vector<std::string> row = {s.name};
      for (int l : lengths) {
        auto model = s.make(l);
        if (!model->Fit(dataset).ok()) {
          row.push_back("-");
          continue;
        }
        const eval::EvalResult r = eval::EvaluateRecommender(model.get(), dataset, 10, eval_cap);
        if (s.name == "CADRL") {
          DumpServingArena(json, *model, BenchJson::Slug(dataset_name) +
                                             "/arena_l" + std::to_string(l));
        }
        row.push_back(Pct(r.ndcg));
        std::cerr << dataset_name << " / " << s.name << " L=" << l
                  << ": " << Pct(r.ndcg) << std::endl;
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    json.AddTable(table, BenchJson::Slug(dataset_name) + "/");
    std::cout << std::endl;
  }
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
