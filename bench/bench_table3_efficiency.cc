// Reproduces Table III: computational cost of recommendation (normalized
// to seconds per 1k users) and path finding (seconds per 10k paths) for
// PGPR, HeteroEmbed, UCPR, CAFE and CADRL, as mean +/- std over repeats.
// Uses google-benchmark for the per-operation microbenchmarks and a plain
// harness for the paper-format table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "bench_json.h"
#include "infer/precision.h"
#include "infer/shard_layout.h"
#include "serve/overload_harness.h"
#include "serve/recommend_service.h"
#include "util/alloc_stats.h"
#include "util/failpoint.h"

namespace cadrl {
namespace bench {
namespace {

struct Table3Entry {
  std::string name;
  std::function<std::unique_ptr<eval::Recommender>(const BenchConfig&,
                                                   const std::string&)>
      make;
};

std::vector<Table3Entry> Table3Models() {
  using namespace baselines;  // NOLINT(build/namespaces): bench-local
  return {
      {"PGPR",
       [](const BenchConfig& c, const std::string&) {
         return std::unique_ptr<eval::Recommender>(MakePgpr(c.budget));
       }},
      {"HeteroEmbed",
       [](const BenchConfig& c, const std::string&) {
         HeteroEmbedOptions o;
         o.transe = c.transe;
         return std::unique_ptr<eval::Recommender>(
             std::make_unique<HeteroEmbedRecommender>(o));
       }},
      {"UCPR",
       [](const BenchConfig& c, const std::string&) {
         return std::unique_ptr<eval::Recommender>(MakeUcpr(c.budget));
       }},
      {"CAFE",
       [](const BenchConfig& c, const std::string&) {
         CafeOptions o;
         o.transe = c.transe;
         return std::unique_ptr<eval::Recommender>(
             std::make_unique<CafeRecommender>(o));
       }},
      {"CADRL",
       [](const BenchConfig& c, const std::string& dataset) {
         return std::unique_ptr<eval::Recommender>(
             MakeCadrlForDataset(c.budget, dataset));
       }},
  };
}

void Run(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  TablePrinter table(
      "Table III: Computational cost (s). Rec normalized per 1k users, "
      "Find per 10k paths; mean +/- std over 3 repeats");
  std::vector<std::string> header = {"Model"};
  for (const std::string& d : DatasetNames()) {
    header.push_back(d + " Rec(1k users)");
    header.push_back(d + " Find(10k paths)");
  }
  table.SetHeader(header);

  std::map<std::string, std::vector<std::string>> rows;
  for (const Table3Entry& entry : Table3Models()) {
    rows[entry.name] = {entry.name};
  }
  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    for (const Table3Entry& entry : Table3Models()) {
      auto model = entry.make(config, dataset_name);
      const Status status = model->Fit(dataset);
      if (!status.ok()) {
        rows[entry.name].insert(rows[entry.name].end(), {"-", "-"});
        continue;
      }
      const eval::TimingResult t = eval::MeasureEfficiency(
          model.get(), dataset, /*users_per_run=*/30, /*paths_per_run=*/120,
          /*repeats=*/3, config.threads);
      rows[entry.name].push_back(
          TablePrinter::Fmt(t.rec_per_1k_users_mean, 3) + " +/- " +
          TablePrinter::Fmt(t.rec_per_1k_users_std, 3));
      rows[entry.name].push_back(
          TablePrinter::Fmt(t.find_per_10k_paths_mean, 3) + " +/- " +
          TablePrinter::Fmt(t.find_per_10k_paths_std, 3));
      std::cerr << dataset_name << " / " << entry.name << " done"
                << std::endl;
    }
  }
  for (const Table3Entry& entry : Table3Models()) {
    table.AddRow(rows[entry.name]);
  }
  table.Print(std::cout);
  json.AddTable(table);
}

// Wall-clock scaling of the parallel substrate: trains and serves CADRL on
// BeautySim at threads=1 and threads=N (N from CADRL_THREADS, default 4)
// and reports throughput — trajectories/s for training, users/s and
// paths/s for inference — plus the training speedup. Both runs must agree
// bit for bit (the determinism contract), which is checked here too; the
// speedup itself only materializes on multi-core hardware.
void RunParallelScaling(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  const int par = (config.threads == 0 || config.threads > 1)
                      ? config.threads
                      : 4;
  data::Dataset dataset = MakeDatasetByName("Beauty");

  struct ScalingRow {
    int threads = 1;
    double train_s = 0.0;
    double traj_per_s = 0.0;
    double users_per_s = 0.0;
    double paths_per_s = 0.0;
    std::vector<float> rewards;
  };
  std::vector<ScalingRow> runs;
  for (const int threads : {1, par}) {
    BenchConfig c = config;
    c.threads = threads;
    c.budget.threads = threads;
    c.transe.threads = threads;
    auto model = baselines::MakeCadrlForDataset(c.budget, "Beauty");

    ScalingRow row;
    row.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    CADRL_CHECK_OK(model->Fit(dataset));
    const auto t1 = std::chrono::steady_clock::now();
    row.train_s = std::chrono::duration<double>(t1 - t0).count();
    const double trajectories =
        static_cast<double>(dataset.num_users()) *
        model->options().episodes_per_user;
    row.traj_per_s = trajectories / row.train_s;
    row.rewards = model->epoch_rewards();

    const eval::TimingResult t = eval::MeasureEfficiency(
        model.get(), dataset, /*users_per_run=*/30, /*paths_per_run=*/120,
        /*repeats=*/3, threads);
    row.users_per_s = 1000.0 / t.rec_per_1k_users_mean;
    row.paths_per_s = 10000.0 / t.find_per_10k_paths_mean;
    runs.push_back(std::move(row));
    const std::string key = "scaling/t" + std::to_string(threads);
    json.Set(key + "/train_s", runs.back().train_s);
    json.Set(key + "/traj_per_s", runs.back().traj_per_s);
    json.Set(key + "/rec_users_per_s", runs.back().users_per_s);
    json.Set(key + "/find_paths_per_s", runs.back().paths_per_s);
    std::cerr << "scaling / threads=" << threads << " done" << std::endl;
  }

  TablePrinter table("Parallel scaling: CADRL on Beauty, wall-clock and "
                     "throughput at 1 vs " + std::to_string(par) +
                     " threads (identical results by construction)");
  table.SetHeader({"Threads", "Train(s)", "Traj/s", "Rec users/s",
                   "Find paths/s", "Train speedup"});
  for (const ScalingRow& row : runs) {
    table.AddRow({std::to_string(row.threads),
                  TablePrinter::Fmt(row.train_s, 2),
                  TablePrinter::Fmt(row.traj_per_s, 1),
                  TablePrinter::Fmt(row.users_per_s, 1),
                  TablePrinter::Fmt(row.paths_per_s, 1),
                  TablePrinter::Fmt(runs.front().train_s / row.train_s, 2) +
                      "x"});
  }
  table.Print(std::cout);
  if (runs.back().rewards != runs.front().rewards) {
    std::cerr << "ERROR: thread-count invariance violated — reward "
                 "histories differ between threads=1 and threads="
              << par << "\n";
  } else {
    std::cout << "determinism check: reward histories identical across "
                 "thread counts\n";
  }
}

// Compiled snapshot vs autograd tape on the same trained model (DESIGN.md
// §12): Recommend/FindPaths throughput for both inference back ends —
// byte-identical answers by the golden-test contract — plus the number of
// ag::TensorImpl allocations one Recommend performs. The compiled column
// must read 0.0: serving steady state never touches the tensor graph.
void RunCompiledVsTape(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(model->Fit(dataset));

  struct ModeRow {
    std::string name;
    double users_per_s = 0.0;
    double paths_per_s = 0.0;
    double allocs_per_rec = 0.0;
  };
  std::vector<ModeRow> rows;
  for (const bool compiled : {true, false}) {
    model->set_use_compiled_inference(compiled);
    ModeRow row;
    row.name = compiled ? "compiled" : "tape";

    const eval::TimingResult t = eval::MeasureEfficiency(
        model.get(), dataset, /*users_per_run=*/30, /*paths_per_run=*/120,
        /*repeats=*/3, config.threads);
    row.users_per_s = 1000.0 / t.rec_per_1k_users_mean;
    row.paths_per_s = 10000.0 / t.find_per_10k_paths_mean;

    // Tensor-graph allocations per Recommend, averaged over a warm pass.
    constexpr int kAllocProbeUsers = 20;
    model->Recommend(dataset.users[0], 10);  // warm-up
    util::TensorAllocScope scope;
    for (int i = 0; i < kAllocProbeUsers; ++i) {
      model->Recommend(
          dataset.users[static_cast<size_t>(i) % dataset.users.size()], 10);
    }
    row.allocs_per_rec =
        static_cast<double>(scope.delta()) / kAllocProbeUsers;

    const std::string key = "compiled_vs_tape/" + row.name;
    json.Set(key + "/rec_users_per_s", row.users_per_s);
    json.Set(key + "/find_paths_per_s", row.paths_per_s);
    json.Set(key + "/allocs_per_recommend", row.allocs_per_rec);
    rows.push_back(std::move(row));
    std::cerr << "compiled_vs_tape / " << rows.back().name << " done"
              << std::endl;
  }
  model->set_use_compiled_inference(true);
  json.Set("compiled_vs_tape/rec_speedup",
           rows[0].users_per_s / rows[1].users_per_s);
  json.Set("compiled_vs_tape/find_speedup",
           rows[0].paths_per_s / rows[1].paths_per_s);

  TablePrinter table(
      "Compiled inference vs autograd tape: CADRL on Beauty, identical "
      "answers, throughput + ag::TensorImpl allocations per Recommend");
  table.SetHeader({"Backend", "Rec users/s", "Find paths/s",
                   "Allocs/Recommend", "Rec speedup"});
  for (const ModeRow& row : rows) {
    table.AddRow({row.name, TablePrinter::Fmt(row.users_per_s, 1),
                  TablePrinter::Fmt(row.paths_per_s, 1),
                  TablePrinter::Fmt(row.allocs_per_rec, 1),
                  TablePrinter::Fmt(row.users_per_s / rows[1].users_per_s,
                                    2) +
                      "x"});
  }
  table.Print(std::cout);
}

double PercentileMs(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted->size())));
  return (*sorted)[idx];
}

// Serving-layer latency percentiles (DESIGN.md §11): replays a synthetic
// request stream against a RecommendService wrapping CADRL on Beauty, once
// fault-free and once with 10% injected scoring faults, and reports
// p50/p95/p99 end-to-end latency per degradation level. The chaotic run
// shows what graceful degradation costs (retry + fallback) and what it
// buys (the degraded levels answer orders of magnitude faster than a
// failing full search would take to exhaust its retries).
void RunServeLatency(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(model->Fit(dataset));

  TablePrinter table(
      "Serving latency: CADRL on Beauty behind RecommendService (4 workers, "
      "4 clients, 1s deadline), end-to-end ms per degradation level");
  table.SetHeader({"Scenario/Level", "n", "p50(ms)", "p95(ms)", "p99(ms)"});

  struct Scenario {
    std::string name;
    double fail_p;
  };
  for (const Scenario& scenario :
       {Scenario{"clean", 0.0}, Scenario{"chaos10", 0.1}}) {
    Failpoints::Instance().DisarmAll();
    if (scenario.fail_p > 0.0) {
      Failpoints::Instance().ArmWithProbability("cadrl/score",
                                                scenario.fail_p, /*seed=*/17);
    }
    serve::ServeOptions options;
    options.threads = 4;
    options.queue_capacity = 256;
    // Generous deadline: the clean scenario measures the pipeline itself
    // (queue + full search), not deadline-driven degradation; the chaotic
    // one isolates what injected faults + the breaker do to the mix.
    options.default_timeout = std::chrono::milliseconds{1000};
    serve::RecommendService service(model.get(), dataset, options);
    CADRL_CHECK_OK(service.Start());

    constexpr int kClients = 4;
    constexpr int kRequests = 120;
    std::vector<std::vector<double>> latencies(4);
    std::vector<std::vector<serve::ServeResponse>> responses(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<serve::ServeResponse>> futures;
        for (int i = c; i < kRequests; i += kClients) {
          serve::ServeRequest req;
          req.id = static_cast<uint64_t>(i) + 1;
          req.user =
              dataset.users[static_cast<size_t>(i) % dataset.users.size()];
          futures.push_back(service.Submit(req));
        }
        responses[c].reserve(futures.size());
        for (auto& f : futures) responses[c].push_back(f.get());
      });
    }
    for (std::thread& t : clients) t.join();
    service.Stop();
    Failpoints::Instance().DisarmAll();
    for (const auto& per_client : responses) {
      for (const auto& resp : per_client) {
        latencies[static_cast<size_t>(resp.level)].push_back(
            resp.latency_ms);
      }
    }
    for (int level = 0; level < 4; ++level) {
      auto& lat = latencies[static_cast<size_t>(level)];
      if (lat.empty()) continue;
      const char* level_name = serve::DegradationLevelName(
          static_cast<serve::DegradationLevel>(level));
      const double p50 = PercentileMs(&lat, 0.50);
      const double p95 = PercentileMs(&lat, 0.95);
      const double p99 = PercentileMs(&lat, 0.99);
      table.AddRow({scenario.name + "/" + level_name,
                    std::to_string(lat.size()), TablePrinter::Fmt(p50, 3),
                    TablePrinter::Fmt(p95, 3), TablePrinter::Fmt(p99, 3)});
      const std::string key =
          "serve/" + scenario.name + "/" + level_name;
      json.Set(key + "/n", static_cast<double>(lat.size()));
      json.Set(key + "/p50_ms", p50);
      json.Set(key + "/p95_ms", p95);
      json.Set(key + "/p99_ms", p99);
    }
    std::cerr << "serve / " << scenario.name << " done" << std::endl;
  }
  table.Print(std::cout);
}

// Throughput-vs-concurrency curve for cross-request micro-batching
// (DESIGN.md §13): closed-loop clients (each submits, waits, repeats)
// against the same service with the batcher off and on. The batched column
// amortizes the policy-head GEMMs across concurrent requests' beam steps,
// so its throughput curve should flatten later as concurrency grows; on a
// single-core machine the curve mainly shows the constant-factor effect,
// since all stacking and all clients share one core. Answers are
// byte-identical either way — the batch_scheduler_test suite holds that
// line, so this harness only reports time.
void RunBatchingConcurrency(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(model->Fit(dataset));

  TablePrinter table(
      "Micro-batching throughput vs concurrency: CADRL on Beauty, "
      "closed-loop clients, batcher off vs on (max_batch=8, linger=100us)");
  table.SetHeader({"Mode/Clients", "req/s", "p50(ms)", "p95(ms)",
                   "mean batch", "flushes"});

  constexpr int kRequestsPerClient = 24;
  for (const bool batched : {false, true}) {
    for (const int concurrency : {1, 2, 4, 8}) {
      serve::ServeOptions options;
      // Workers >= clients so queueing never caps the curve: the measured
      // quantity is inference + (when on) staging-buffer time.
      options.threads = std::max(4, concurrency);
      options.queue_capacity = 1024;
      options.batch_max = batched ? 8 : 0;
      options.batch_linger = std::chrono::microseconds{100};
      serve::RecommendService service(model.get(), dataset, options);
      CADRL_CHECK_OK(service.Start());

      std::vector<std::vector<double>> latencies(
          static_cast<size_t>(concurrency));
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&, c] {
          latencies[static_cast<size_t>(c)].reserve(kRequestsPerClient);
          for (int i = 0; i < kRequestsPerClient; ++i) {
            serve::ServeRequest req;
            req.user = dataset.users[static_cast<size_t>(
                c * kRequestsPerClient + i) % dataset.users.size()];
            req.timeout = std::chrono::microseconds{-1};  // no deadline
            const serve::ServeResponse resp = service.Submit(req).get();
            latencies[static_cast<size_t>(c)].push_back(resp.latency_ms);
          }
        });
      }
      for (std::thread& t : clients) t.join();
      const double wall_s = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
      service.Stop();

      std::vector<double> all;
      for (auto& per_client : latencies) {
        all.insert(all.end(), per_client.begin(), per_client.end());
      }
      const double req_per_s =
          static_cast<double>(all.size()) / wall_s;
      const double p50 = PercentileMs(&all, 0.50);
      const double p95 = PercentileMs(&all, 0.95);
      const serve::RecommendService::Stats stats = service.stats();
      const double mean_batch =
          stats.batch_flushes > 0
              ? static_cast<double>(stats.batched_steps) /
                    static_cast<double>(stats.batch_flushes)
              : 0.0;

      const std::string mode = batched ? "on" : "off";
      table.AddRow({mode + "/c" + std::to_string(concurrency),
                    TablePrinter::Fmt(req_per_s, 1),
                    TablePrinter::Fmt(p50, 3), TablePrinter::Fmt(p95, 3),
                    TablePrinter::Fmt(mean_batch, 2),
                    std::to_string(stats.batch_flushes)});
      const std::string key =
          "batching/" + mode + "/c" + std::to_string(concurrency);
      json.Set(key + "/req_per_s", req_per_s);
      json.Set(key + "/p50_ms", p50);
      json.Set(key + "/p95_ms", p95);
      json.Set(key + "/mean_batch", mean_batch);
      std::cerr << "batching / " << mode << " c=" << concurrency << " done"
                << std::endl;
    }
  }
  table.Print(std::cout);
}

// Quantized serving end to end (DESIGN.md §14): the same trained CADRL on
// Beauty republished under f32 / f16 / int8, reporting per-section arena
// bytes, single-stream Recommend/FindPaths throughput, NDCG@10 / HR@10
// drift against f32, and closed-loop batched-serve throughput (4 clients,
// max_batch=8). The int8 row is the headline: ~0.29x the f32 embedding
// bytes at dim 24, bit-determinism intact (quantized_inference_test holds
// that line), drift bounded, serve throughput at least f32's.
void RunQuantizedServing(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(model->Fit(dataset));

  const eval::EvalResult f32_eval =
      eval::EvaluateRecommender(model.get(), dataset, /*k=*/10,
                                config.eval_users, config.threads);

  TablePrinter table(
      "Quantized serving: CADRL on Beauty, one trained model republished "
      "per precision; arena bytes (rows+scales | policy), throughput, "
      "metric drift vs f32, batched req/s (4 clients, max_batch=8)");
  table.SetHeader({"Precision", "Store B", "Policy B", "Rec users/s",
                   "Find paths/s", "dNDCG@10", "dHR@10", "Serve req/s"});

  double f32_serve = 0.0;
  for (const infer::Precision precision :
       {infer::Precision::kF32, infer::Precision::kF16,
        infer::Precision::kInt8}) {
    model->set_snapshot_precision(precision);
    model->RepublishSnapshot();
    const std::string name = infer::PrecisionName(precision);
    const std::string key = "quantized/" + name;
    DumpServingArena(json, *model, key + "/arena");
    const eval::Recommender::ServingArena arena = model->ServingArenaBytes();

    const eval::TimingResult t = eval::MeasureEfficiency(
        model.get(), dataset, /*users_per_run=*/30, /*paths_per_run=*/120,
        /*repeats=*/3, config.threads);
    const double users_per_s = 1000.0 / t.rec_per_1k_users_mean;
    const double paths_per_s = 10000.0 / t.find_per_10k_paths_mean;

    const eval::EvalResult e =
        eval::EvaluateRecommender(model.get(), dataset, /*k=*/10,
                                  config.eval_users, config.threads);
    const double d_ndcg = e.ndcg - f32_eval.ndcg;
    const double d_hr = e.hit_rate - f32_eval.hit_rate;

    // Closed-loop batched serving, the deployment configuration the int8
    // arena targets: smaller rows -> more of the store stays cache-hot
    // while concurrent requests' steps stack.
    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 24;
    serve::ServeOptions options;
    options.threads = 4;
    options.queue_capacity = 1024;
    options.batch_max = 8;
    options.batch_linger = std::chrono::microseconds{100};
    serve::RecommendService service(model.get(), dataset, options);
    CADRL_CHECK_OK(service.Start());
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          serve::ServeRequest req;
          req.user = dataset.users[static_cast<size_t>(
              c * kRequestsPerClient + i) % dataset.users.size()];
          req.timeout = std::chrono::microseconds{-1};  // no deadline
          service.Submit(req).get();
        }
      });
    }
    for (std::thread& th : clients) th.join();
    const double wall_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    service.Stop();
    const double req_per_s = kClients * kRequestsPerClient / wall_s;
    if (precision == infer::Precision::kF32) f32_serve = req_per_s;

    table.AddRow({name,
                  std::to_string(arena.store_row_bytes +
                                 arena.store_scale_bytes),
                  std::to_string(arena.policy_param_bytes),
                  TablePrinter::Fmt(users_per_s, 1),
                  TablePrinter::Fmt(paths_per_s, 1),
                  TablePrinter::Fmt(d_ndcg, 3), TablePrinter::Fmt(d_hr, 3),
                  TablePrinter::Fmt(req_per_s, 1)});
    json.Set(key + "/rec_users_per_s", users_per_s);
    json.Set(key + "/find_paths_per_s", paths_per_s);
    json.Set(key + "/ndcg_drift", d_ndcg);
    json.Set(key + "/hit_rate_drift", d_hr);
    json.Set(key + "/serve_req_per_s", req_per_s);
    if (precision == infer::Precision::kInt8 && f32_serve > 0.0) {
      json.Set("quantized/int8_vs_f32_serve_speedup", req_per_s / f32_serve);
    }
    std::cerr << "quantized / " << name << " done" << std::endl;
  }
  model->set_snapshot_precision(infer::Precision::kF32);
  model->RepublishSnapshot();
  table.Print(std::cout);
}

// Snapshot reload latency (DESIGN.md §16): the same trained CADRL on
// Beauty hot-swapped three ways — (a) contiguous checkpoint reload
// (ReloadFromCheckpoint: parse the full hex-float model file, re-quantize,
// rebuild the heap arena), (b) cold shard-dir publish (LoadFromShardDir
// with no predecessor: open + mmap + header/CRC validate every shard, no
// parse), and (c) delta republish (one entity row perturbed, recompiled —
// only the one changed shard is rewritten and remapped) — plus the no-op
// poll an unchanged directory costs a reloader. The point of the format:
// (b) is independent of arena size and (c) is independent of everything
// but the changed range.
void RunReloadLatency(BenchJson& json) {
  const BenchConfig config = BenchConfig::FromEnv();
  data::Dataset dataset = MakeDatasetByName("Beauty");
  auto model = baselines::MakeCadrlForDataset(config.budget, "Beauty");
  CADRL_CHECK_OK(model->Fit(dataset));

  std::string root = []() {
    const char* t = std::getenv("TEST_TMPDIR");
    std::string tmpl = std::string(t != nullptr && t[0] != '\0' ? t : "/tmp") +
                       "/cadrl_reload_bench_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    CADRL_CHECK(::mkdtemp(buf.data()) != nullptr);
    return std::string(buf.data());
  }();
  const std::string ckpt = root + "/model.cadrl";
  const std::string shard_dir = root + "/shards";
  CADRL_CHECK_OK(model->SaveModel(ckpt));
  // Small shard rows so the tiny bench dataset still splits into a real
  // multi-shard set; production tables would use the 4096-row default.
  constexpr int64_t kShardRows = 64;
  infer::ShardWriteStats wstats;
  CADRL_CHECK_OK(model->CompileSnapshotToDir(shard_dir, kShardRows, &wstats));

  constexpr int kRepeats = 5;
  auto time_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };

  // (a) Contiguous checkpoint parse + arena rebuild + publish.
  std::vector<double> parse_ms;
  for (int r = 0; r < kRepeats; ++r) {
    parse_ms.push_back(
        time_ms([&] { CADRL_CHECK_OK(model->ReloadFromCheckpoint(ckpt)); }));
  }

  // (b) Cold shard-dir load: no predecessor, every shard opened + mapped.
  std::shared_ptr<const infer::CompiledModel> cold;
  std::vector<double> cold_ms;
  for (int r = 0; r < kRepeats; ++r) {
    cold.reset();
    cold_ms.push_back(time_ms([&] {
      CADRL_CHECK_OK(
          infer::LoadFromShardDir(shard_dir, {}, nullptr, &cold));
    }));
  }
  const int shard_count = cold->shard_stats().shard_count;

  // No-op poll: unchanged dir, previous mappings all reused.
  std::vector<double> noop_ms;
  for (int r = 0; r < kRepeats; ++r) {
    std::shared_ptr<const infer::CompiledModel> again;
    noop_ms.push_back(time_ms([&] {
      CADRL_CHECK_OK(infer::LoadFromShardDir(shard_dir, {}, cold, &again));
    }));
    CADRL_CHECK_EQ(again->shard_stats().shards_remapped, 0);
  }

  // (c) Delta: perturb one entity row, recompile (rewrites one shard +
  // manifest), then reload against the cold model — one remap, rest reused.
  core::EmbeddingStore perturbed = *model->store();
  const kg::EntityId victim = dataset.users.front();
  std::vector<float> row(perturbed.Entity(victim).begin(),
                         perturbed.Entity(victim).end());
  row[0] += 0.25f;
  perturbed.SetEntityRow(victim, row);
  const std::shared_ptr<const infer::CompiledModel> snap =
      model->CurrentSnapshot();
  infer::ShardWriteOptions wopts;
  wopts.shard_rows = kShardRows;
  infer::ShardWriteStats delta_write;
  const double delta_compile_ms = time_ms([&] {
    CADRL_CHECK_OK(infer::CompileToShardDir(
        perturbed.View(), snap->policy(), snap->score_scale(),
        infer::CompiledModelOptions{snap->precision()}, shard_dir, wopts,
        &delta_write));
  });
  std::shared_ptr<const infer::CompiledModel> delta;
  const double delta_ms = time_ms([&] {
    CADRL_CHECK_OK(infer::LoadFromShardDir(shard_dir, {}, cold, &delta));
  });
  CADRL_CHECK_GE(delta_write.shards_reused, shard_count - 1);
  CADRL_CHECK_GT(delta->shard_stats().shards_reused, 0);

  TablePrinter table(
      "Snapshot reload latency: CADRL on Beauty (" +
      std::to_string(shard_count) + " shards of " +
      std::to_string(kShardRows) + " rows), mean of " +
      std::to_string(kRepeats) + " repeats");
  table.SetHeader({"Path", "ms", "Shards remapped"});
  table.AddRow({"checkpoint parse (contiguous)",
                TablePrinter::Fmt(mean(parse_ms), 3), "-"});
  table.AddRow({"shard-dir cold publish (mmap)",
                TablePrinter::Fmt(mean(cold_ms), 3),
                std::to_string(shard_count)});
  table.AddRow({"shard-dir delta republish",
                TablePrinter::Fmt(delta_ms, 3),
                std::to_string(delta->shard_stats().shards_remapped)});
  table.AddRow({"shard-dir no-op poll", TablePrinter::Fmt(mean(noop_ms), 3),
                "0"});
  table.Print(std::cout);

  json.Set("reload/checkpoint_parse_ms", mean(parse_ms));
  json.Set("reload/mmap_cold_publish_ms", mean(cold_ms));
  json.Set("reload/delta_republish_ms", delta_ms);
  json.Set("reload/delta_compile_ms", delta_compile_ms);
  json.Set("reload/noop_poll_ms", mean(noop_ms));
  json.Set("reload/shard_count", static_cast<double>(shard_count));
  json.Set("reload/delta_shards_remapped",
           static_cast<double>(delta->shard_stats().shards_remapped));
  json.Set("reload/delta_shards_written",
           static_cast<double>(delta_write.shards_written));
  json.Set("reload/mapped_bytes",
           static_cast<double>(cold->shard_stats().mapped_bytes));
  json.Set("reload/parse_vs_mmap_speedup", mean(parse_ms) / mean(cold_ms));
  std::cerr << "reload latency done" << std::endl;

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

// Goodput vs offered load (DESIGN.md §15): the discrete-event overload
// harness (4 simulated workers, 1ms +/- 30% service, 20ms deadline, 1s of
// virtual time per cell) swept over 1x-4x of nominal capacity, once with
// the plain bounded queue and once with the AIMD admission limiter +
// deadline-aware early shedding. Virtual-clock simulation: every cell is
// deterministic and the whole sweep costs only simulation work. The
// contract the chaos suite enforces shows up as the shape of the two
// curves — fixed-queue goodput collapses past saturation while AIMD
// goodput holds near capacity, trading the excess for explicit sheds.
void RunOverloadCurve(BenchJson& json) {
  TablePrinter table(
      "Overload control: goodput vs offered load, fixed queue vs AIMD "
      "admission (DES on a virtual clock; 4 workers, 1ms service, 20ms "
      "deadline, 1s per cell)");
  table.SetHeader({"Mode/Load", "Offered/s", "Goodput/s", "p95 full(ms)",
                   "Shed rate", "Degraded", "Limit [min,max]"});

  for (const bool adaptive : {false, true}) {
    const std::string mode = adaptive ? "aimd" : "fixed";
    for (const double multiplier : {1.0, 1.5, 2.0, 3.0, 4.0}) {
      serve::OverloadOptions o;
      o.workers = 4;
      o.mean_service = std::chrono::microseconds{1000};
      o.service_jitter = 0.3;
      o.deadline = std::chrono::microseconds{20000};
      o.duration = std::chrono::milliseconds{1000};
      o.seed = 42;
      o.offered_multiplier = multiplier;
      o.adaptive_admission = adaptive;
      const serve::OverloadReport r = serve::RunOverload(o);

      std::string load = TablePrinter::Fmt(multiplier, 1) + "x";
      table.AddRow({mode + "/" + load,
                    TablePrinter::Fmt(r.offered_per_s, 0),
                    TablePrinter::Fmt(r.goodput_per_s, 0),
                    TablePrinter::Fmt(r.p95_full_ms, 2),
                    TablePrinter::Fmt(r.shed_rate, 3),
                    std::to_string(r.degraded),
                    adaptive ? "[" + TablePrinter::Fmt(r.limit_min, 1) +
                                   ", " + TablePrinter::Fmt(r.limit_max, 1) +
                                   "]"
                             : "-"});
      // JSON keys use the multiplier with the dot stripped (1.5x -> 1p5x).
      std::string mkey = TablePrinter::Fmt(multiplier, 1) + "x";
      std::replace(mkey.begin(), mkey.end(), '.', 'p');
      const std::string key = "overload/" + mode + "/" + mkey;
      json.Set(key + "/offered_per_s", r.offered_per_s);
      json.Set(key + "/goodput_per_s", r.goodput_per_s);
      json.Set(key + "/p95_full_ms", r.p95_full_ms);
      json.Set(key + "/shed_rate", r.shed_rate);
      if (adaptive) {
        json.Set(key + "/limit_min", r.limit_min);
        json.Set(key + "/limit_max", r.limit_max);
        json.Set(key + "/limit_mean", r.limit_mean);
      }
      std::cerr << "overload / " << mode << " " << load << " done"
                << std::endl;
    }
  }
  table.Print(std::cout);
}

// A google-benchmark microbenchmark of the per-user inference step, the
// operation Table III normalizes: registered so `--benchmark_filter` users
// can drill into single-model latencies.
void BM_CadrlRecommendUser(benchmark::State& state) {
  static data::Dataset dataset = MakeDatasetByName("Beauty");
  static std::unique_ptr<core::CadrlRecommender> model = [] {
    BenchConfig config = BenchConfig::FromEnv();
    auto m = baselines::MakeCadrlForDataset(config.budget, "Beauty");
    CADRL_CHECK_OK(m->Fit(dataset));
    return m;
  }();
  int64_t cursor = 0;
  for (auto _ : state) {
    const kg::EntityId user = dataset.users[static_cast<size_t>(
        cursor++ % dataset.num_users())];
    benchmark::DoNotOptimize(model->Recommend(user, 10));
  }
}
BENCHMARK(BM_CadrlRecommendUser)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main(int argc, char** argv) {
  cadrl::bench::BenchJson json("table3");
  cadrl::bench::Run(json);
  cadrl::bench::RunParallelScaling(json);
  cadrl::bench::RunCompiledVsTape(json);
  cadrl::bench::RunServeLatency(json);
  cadrl::bench::RunBatchingConcurrency(json);
  cadrl::bench::RunQuantizedServing(json);
  cadrl::bench::RunReloadLatency(json);
  cadrl::bench::RunOverloadCurve(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
