// Reproduces Table III: computational cost of recommendation (normalized
// to seconds per 1k users) and path finding (seconds per 10k paths) for
// PGPR, HeteroEmbed, UCPR, CAFE and CADRL, as mean +/- std over repeats.
// Uses google-benchmark for the per-operation microbenchmarks and a plain
// harness for the paper-format table.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <memory>

#include "bench_common.h"

namespace cadrl {
namespace bench {
namespace {

struct Table3Entry {
  std::string name;
  std::function<std::unique_ptr<eval::Recommender>(const BenchConfig&,
                                                   const std::string&)>
      make;
};

std::vector<Table3Entry> Table3Models() {
  using namespace baselines;  // NOLINT(build/namespaces): bench-local
  return {
      {"PGPR",
       [](const BenchConfig& c, const std::string&) {
         return std::unique_ptr<eval::Recommender>(MakePgpr(c.budget));
       }},
      {"HeteroEmbed",
       [](const BenchConfig& c, const std::string&) {
         HeteroEmbedOptions o;
         o.transe = c.transe;
         return std::unique_ptr<eval::Recommender>(
             std::make_unique<HeteroEmbedRecommender>(o));
       }},
      {"UCPR",
       [](const BenchConfig& c, const std::string&) {
         return std::unique_ptr<eval::Recommender>(MakeUcpr(c.budget));
       }},
      {"CAFE",
       [](const BenchConfig& c, const std::string&) {
         CafeOptions o;
         o.transe = c.transe;
         return std::unique_ptr<eval::Recommender>(
             std::make_unique<CafeRecommender>(o));
       }},
      {"CADRL",
       [](const BenchConfig& c, const std::string& dataset) {
         return std::unique_ptr<eval::Recommender>(
             MakeCadrlForDataset(c.budget, dataset));
       }},
  };
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  TablePrinter table(
      "Table III: Computational cost (s). Rec normalized per 1k users, "
      "Find per 10k paths; mean +/- std over 3 repeats");
  std::vector<std::string> header = {"Model"};
  for (const std::string& d : DatasetNames()) {
    header.push_back(d + " Rec(1k users)");
    header.push_back(d + " Find(10k paths)");
  }
  table.SetHeader(header);

  std::map<std::string, std::vector<std::string>> rows;
  for (const Table3Entry& entry : Table3Models()) {
    rows[entry.name] = {entry.name};
  }
  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    for (const Table3Entry& entry : Table3Models()) {
      auto model = entry.make(config, dataset_name);
      const Status status = model->Fit(dataset);
      if (!status.ok()) {
        rows[entry.name].insert(rows[entry.name].end(), {"-", "-"});
        continue;
      }
      const eval::TimingResult t = eval::MeasureEfficiency(
          model.get(), dataset, /*users_per_run=*/30, /*paths_per_run=*/120,
          /*repeats=*/3);
      rows[entry.name].push_back(
          TablePrinter::Fmt(t.rec_per_1k_users_mean, 3) + " +/- " +
          TablePrinter::Fmt(t.rec_per_1k_users_std, 3));
      rows[entry.name].push_back(
          TablePrinter::Fmt(t.find_per_10k_paths_mean, 3) + " +/- " +
          TablePrinter::Fmt(t.find_per_10k_paths_std, 3));
      std::cerr << dataset_name << " / " << entry.name << " done"
                << std::endl;
    }
  }
  for (const Table3Entry& entry : Table3Models()) {
    table.AddRow(rows[entry.name]);
  }
  table.Print(std::cout);
}

// A google-benchmark microbenchmark of the per-user inference step, the
// operation Table III normalizes: registered so `--benchmark_filter` users
// can drill into single-model latencies.
void BM_CadrlRecommendUser(benchmark::State& state) {
  static data::Dataset dataset = MakeDatasetByName("Beauty");
  static std::unique_ptr<core::CadrlRecommender> model = [] {
    BenchConfig config = BenchConfig::FromEnv();
    auto m = baselines::MakeCadrlForDataset(config.budget, "Beauty");
    CADRL_CHECK_OK(m->Fit(dataset));
    return m;
  }();
  int64_t cursor = 0;
  for (auto _ : state) {
    const kg::EntityId user = dataset.users[static_cast<size_t>(
        cursor++ % dataset.num_users())];
    benchmark::DoNotOptimize(model->Recommend(user, 10));
  }
}
BENCHMARK(BM_CadrlRecommendUser)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main(int argc, char** argv) {
  cadrl::bench::Run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
