// Reproduces Table IV: ablation of CADRL's two components — "CADRL w/o
// DARL" (single agent, binary terminal reward) and "CADRL w/o CGGNN"
// (dual agents on raw TransE representations) — against the full model on
// all three datasets.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "bench_json.h"

namespace cadrl {
namespace bench {
namespace {

void Run() {
  BenchJson json("table4");
  const BenchConfig config = BenchConfig::FromEnv();
  struct Variant {
    std::string name;
    std::function<std::unique_ptr<core::CadrlRecommender>(
        const std::string&)>
        make;
  };
  const std::vector<Variant> variants = {
      {"CADRL w/o DARL",
       [&](const std::string&) {
         return baselines::MakeCadrlWithoutDarl(config.budget);
       }},
      {"CADRL w/o CGGNN",
       [&](const std::string&) {
         return baselines::MakeCadrlWithoutCggnn(config.budget);
       }},
      {"CADRL",
       [&](const std::string& dataset_name) {
         return baselines::MakeCadrlForDataset(config.budget, dataset_name);
       }},
  };

  TablePrinter table("Table IV: Ablation on different components (all %)");
  std::vector<std::string> header = {"Model"};
  for (const std::string& d : DatasetNames()) {
    header.push_back(d + " NDCG");
    header.push_back(d + " Recall");
    header.push_back(d + " HR");
    header.push_back(d + " Prec.");
  }
  table.SetHeader(header);
  std::map<std::string, std::vector<std::string>> rows;
  for (const Variant& v : variants) rows[v.name] = {v.name};
  for (const std::string& dataset_name : DatasetNames()) {
    data::Dataset dataset = MakeDatasetByName(dataset_name);
    for (const Variant& v : variants) {
      auto model = v.make(dataset_name);
      const Status status = model->Fit(dataset);
      if (!status.ok()) {
        rows[v.name].insert(rows[v.name].end(), {"-", "-", "-", "-"});
        continue;
      }
      const eval::EvalResult r = eval::EvaluateRecommender(
          model.get(), dataset, 10, config.eval_users);
      DumpServingArena(json, *model, "arena/" + BenchJson::Slug(dataset_name) +
                                         "/" + BenchJson::Slug(v.name));
      rows[v.name].push_back(Pct(r.ndcg));
      rows[v.name].push_back(Pct(r.recall));
      rows[v.name].push_back(Pct(r.hit_rate));
      rows[v.name].push_back(Pct(r.precision));
      std::cerr << dataset_name << " / " << v.name << ": NDCG "
                << Pct(r.ndcg) << std::endl;
    }
  }
  for (const Variant& v : variants) table.AddRow(rows[v.name]);
  table.Print(std::cout);
  json.AddTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace cadrl

int main() {
  cadrl::bench::Run();
  return 0;
}
